package manager

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/hashing"
	"stdchk/internal/namespace"
	"stdchk/internal/proto"
)

// catalog is the manager's metadata heart: datasets and their version
// chains, plus the global content-addressed chunk index that implements
// copy-on-write sharing between incremental checkpoint versions
// (paper §IV.C "Architectural support").
//
// The paper argues the manager is off the critical path because it
// "sustains well over 1,000 transactions per second" (§V.E). To keep that
// true under client scale-out, the catalog is lock-striped: datasets hash
// onto independent dataset shards and the content index hashes onto
// independent chunk shards, so alloc/commit/dedup traffic on different
// datasets never contends on a global lock, and read-mostly paths
// (getMap, stat, hasChunks) take per-stripe RLocks. Global scalars
// (ID allocators, byte counters) are atomics.
//
// Lock ordering: a dataset-shard lock may be held while chunk-shard locks
// are acquired (commit publish, map building, deletes), never the
// reverse, and no two shards of the same kind are ever held together.
// The dataset-ID index mutex is a leaf lock.
type catalog struct {
	ds []*datasetShard // len is a power of two
	ck []*chunkShard   // len is a power of two

	// maps memoizes wire-ready chunk-maps per (dataset, version) so
	// repeat getMaps — the restart-storm shape — skip the per-chunk
	// location sorting and chunk-stripe lock traffic of buildMap. It is
	// consulted and filled under the dataset stripe's RLock and
	// invalidated by commit/delete/restore (dataset-scoped, under the
	// stripe's write lock) and replica death (full flush). Leaf lock.
	maps *hotMapCache

	nextDataset  atomic.Uint64
	nextVersion  atomic.Uint64
	logicalBytes atomic.Int64 // sum of committed file sizes
	storedBytes  atomic.Int64 // bytes of unique chunks actually stored

	// ids guards dataset-ID uniqueness across shards. It is touched only
	// when a dataset is created, restored, or fully deleted — never on
	// the per-version hot path.
	ids struct {
		mu   sync.Mutex
		used map[core.DatasetID]struct{}
	}

	// journalHook, when set, is invoked inside the dataset stripe's
	// critical section for every commit and delete, BEFORE the mutation
	// becomes visible to other stripes' clients. That placement is what
	// keeps the journal globally ordered with respect to causality: a
	// copy-on-write commit can only reference a chunk whose publishing
	// commit already ran its hook, so replay never meets a reference to a
	// chunk it has not seen uploaded. The manager sets the hook after
	// journal replay (nil during replay, so replayed entries are not
	// re-journaled). The journal's own mutex is a leaf lock.
	//
	// A hook error aborts the mutation: the version is never created (or
	// the delete never applied), so the catalog can never hold state the
	// journal failed to capture — acknowledged is a subset of journaled.
	// The converse window (journaled but the caller crashed before
	// acknowledging) is benign redo-log semantics: replay resurrects an
	// unacknowledged commit, never loses an acknowledged one.
	journalHook func(journalEntry) error

	// replaying is set during single-threaded journal replay. A replayed
	// copy-on-write reference may name a chunk the journal has already
	// deleted: live, the committing client's pending reference kept the
	// chunk alive across a concurrent delete on another stripe, but the
	// sequential journal cannot express that overlap. Replay therefore
	// re-creates the entry (with no locations — they died with the
	// delete; benefactor GC inventory or quorum recovery re-learns them)
	// instead of refusing to start.
	replaying bool
}

// stripedMu is one instrumented lock stripe: an RWMutex that counts
// acquisitions and how many of them found the stripe already held
// (TryLock failed). The contended/ops ratio is the direct measure of
// metadata-plane serialization. Every shard type embeds it so the
// accounting lives in exactly one place.
type stripedMu struct {
	mu        sync.RWMutex
	ops       atomic.Int64
	contended atomic.Int64
}

func (s *stripedMu) lock() {
	if !s.mu.TryLock() {
		s.contended.Add(1)
		s.mu.Lock()
	}
	s.ops.Add(1)
}

func (s *stripedMu) unlock() { s.mu.Unlock() }

func (s *stripedMu) rlock() {
	if !s.mu.TryRLock() {
		s.contended.Add(1)
		s.mu.RLock()
	}
	s.ops.Add(1)
}

func (s *stripedMu) runlock() { s.mu.RUnlock() }

func (s *stripedMu) snapshot() proto.StripeStats {
	return proto.StripeStats{Ops: s.ops.Load(), Contended: s.contended.Load()}
}

type datasetShard struct {
	stripedMu
	byName map[string]*dataset // dataset key (namespace.DatasetOf) -> chain
}

type chunkShard struct {
	stripedMu
	chunks map[core.ChunkID]*chunkEntry
}

type dataset struct {
	id          core.DatasetID
	name        string // dataset key, e.g. "blast.n1"
	folder      string
	replication int
	versions    []*version // commit order
}

type version struct {
	id          core.VersionID
	fileName    string // as written, e.g. "blast.n1.t7"
	fileSize    int64
	chunkSize   int64 // striping size, or max span bound when variable
	variable    bool  // content-defined chunk boundaries
	chunks      []core.ChunkRef
	newBytes    int64
	committedAt time.Time
	writer      string // client identity declared at alloc ("" = none)
}

type chunkEntry struct {
	size int64
	refs int
	// pending counts references held by in-flight (not yet published)
	// commits. refs-pending is the published reference count: dedup
	// probes and copy-on-write validation only trust published chunks,
	// so a commit that later fails validation and rolls back can never
	// have been observed — the same visibility the single-lock catalog
	// gave by validating and publishing under one critical section. GC
	// membership (referenced) deliberately includes pending references,
	// keeping in-flight uploads safe from collection.
	pending   int
	locations map[core.NodeID]struct{}
}

// published is the publicly visible reference count.
func (e *chunkEntry) published() int { return e.refs - e.pending }

// defaultStripes is the stripe count used when the manager config does not
// specify one. 16 stripes keep the per-stripe collision probability low for
// dozens of concurrent writers while the per-shard maps stay cache-friendly.
const defaultStripes = 16

// maxStripes bounds configured stripe counts.
const maxStripes = 256

// normalizeStripes rounds n up to a power of two in [1, maxStripes].
func normalizeStripes(n int) int {
	if n <= 0 {
		n = defaultStripes
	}
	if n > maxStripes {
		n = maxStripes
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// newCatalog builds a catalog with the default stripe count.
func newCatalog() *catalog { return newCatalogStripes(defaultStripes) }

// newCatalogStripes builds a catalog with `stripes` dataset stripes and the
// same number of chunk-index stripes. stripes is rounded up to a power of
// two; 1 reproduces the historical single-lock behaviour (the managerload
// baseline).
func newCatalogStripes(stripes int) *catalog {
	n := normalizeStripes(stripes)
	c := &catalog{
		ds:   make([]*datasetShard, n),
		ck:   make([]*chunkShard, n),
		maps: newHotMapCache(defaultMapCacheEntries),
	}
	for i := range c.ds {
		c.ds[i] = &datasetShard{byName: make(map[string]*dataset)}
	}
	for i := range c.ck {
		c.ck[i] = &chunkShard{chunks: make(map[core.ChunkID]*chunkEntry)}
	}
	c.ids.used = make(map[core.DatasetID]struct{})
	return c
}

// dsShardOf hashes a dataset key onto its shard — the same FNV-1a the
// federation layer partitions the namespace with (hashing.FNV1aString).
func (c *catalog) dsShardOf(key string) *datasetShard {
	return c.ds[hashing.FNV1aString(key)&uint64(len(c.ds)-1)]
}

// ckIndexOf maps a chunk ID onto a chunk-shard index. Chunk IDs are SHA-1
// hashes, so the leading bytes are uniform.
func (c *catalog) ckIndexOf(id core.ChunkID) uint32 {
	return uint32(binary.BigEndian.Uint64(id[:8]) & uint64(len(c.ck)-1))
}

// raiseFloor lifts an atomic ID allocator to at least v, so subsequent
// Add(1) allocations can never collide with an externally supplied ID.
func raiseFloor(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// claimDatasetID reserves a dataset ID. want is tried first (0 means
// "allocate fresh"); if it is taken, a fresh ID is allocated.
func (c *catalog) claimDatasetID(want core.DatasetID) core.DatasetID {
	c.ids.mu.Lock()
	defer c.ids.mu.Unlock()
	if want != 0 {
		raiseFloor(&c.nextDataset, uint64(want))
		if _, taken := c.ids.used[want]; !taken {
			c.ids.used[want] = struct{}{}
			return want
		}
	}
	id := core.DatasetID(c.nextDataset.Add(1))
	for {
		if _, taken := c.ids.used[id]; !taken {
			break
		}
		id = core.DatasetID(c.nextDataset.Add(1))
	}
	c.ids.used[id] = struct{}{}
	return id
}

// releaseDatasetID forgets a fully deleted dataset's ID.
func (c *catalog) releaseDatasetID(id core.DatasetID) {
	c.ids.mu.Lock()
	delete(c.ids.used, id)
	c.ids.mu.Unlock()
}

// hasChunks answers the incremental-checkpointing dedup query: which of
// the given hashes are already stored (referenced by at least one
// committed version). The probe takes only per-stripe read locks, one
// acquisition per touched stripe.
func (c *catalog) hasChunks(ids []core.ChunkID) []bool {
	out := make([]bool, len(ids))
	if len(ids) == 0 {
		return out
	}
	shardOf := make([]uint32, len(ids))
	var touched [maxStripes / 64]uint64 // bitmap over stripes
	for i, id := range ids {
		si := c.ckIndexOf(id)
		shardOf[i] = si
		touched[si>>6] |= 1 << (si & 63)
	}
	for si := range c.ck {
		if touched[si>>6]&(1<<(uint(si)&63)) == 0 {
			continue
		}
		sh := c.ck[si]
		sh.rlock()
		for i, s := range shardOf {
			if int(s) != si {
				continue
			}
			e, ok := sh.chunks[ids[i]]
			out[i] = ok && e.published() > 0 && len(e.locations) > 0
		}
		sh.runlock()
	}
	return out
}

// chunkCharge is one unique chunk of a commit or restore: how to reference
// it in the content index.
type chunkCharge struct {
	id   core.ChunkID
	size int64
	locs []core.NodeID
	// requireExisting marks a copy-on-write reference: the chunk must
	// already be stored (commit validation).
	requireExisting bool
	// countNew credits newBytes/storedBytes when this charge creates the
	// first reference.
	countNew bool
}

// chargeChunks takes one pending reference per charge, creating entries
// as needed, atomically per chunk (validate-and-increment under the
// stripe lock, so a concurrent delete cannot orphan a chunk between check
// and use). References stay pending — invisible to dedup probes and
// copy-on-write validation — until confirmChunks publishes them; on error
// every reference taken so far is rolled back as if it never existed.
func (c *catalog) chargeChunks(fileName string, charges []chunkCharge) (int64, error) {
	byShard := make(map[uint32][]int)
	for i := range charges {
		si := c.ckIndexOf(charges[i].id)
		byShard[si] = append(byShard[si], i)
	}
	var newBytes int64
	applied := make([]int, 0, len(charges))
	var chargeErr error
	for si, idx := range byShard {
		sh := c.ck[si]
		sh.lock()
		for _, i := range idx {
			ch := &charges[i]
			e, ok := sh.chunks[ch.id]
			if ch.requireExisting {
				// Copy-on-write references only trust published chunks,
				// as the single-lock catalog did: an in-flight commit's
				// uploads may yet roll back. During journal replay the
				// reference is taken on faith instead (see the replaying
				// field): the live run already validated it under
				// interleavings the sequential journal cannot reproduce.
				if (!ok || e.published() <= 0 || len(e.locations) == 0) && !c.replaying {
					chargeErr = fmt.Errorf("commit %s: shared chunk %s unknown: %w", fileName, ch.id.Short(), core.ErrNotFound)
					break
				}
				if ok && e.size != ch.size {
					chargeErr = fmt.Errorf("commit %s: shared chunk %s size %d, index says %d: %w",
						fileName, ch.id.Short(), ch.size, e.size, core.ErrIntegrity)
					break
				}
			}
			if !ok {
				e = &chunkEntry{size: ch.size, locations: make(map[core.NodeID]struct{})}
				sh.chunks[ch.id] = e
				if ch.requireExisting && c.replaying {
					// Lenient replay re-created an entry the journal's
					// delete order removed. The bytes are stored as far
					// as the system knows, so credit the global counter
					// (a later delete will debit it) — but not this
					// version's newBytes: it did not upload them.
					c.storedBytes.Add(ch.size)
				}
			}
			// First-reference crediting. If two commits race to upload
			// the same new chunk and the one that took the first
			// reference later rolls back, the survivor's per-version
			// newBytes undercounts that chunk (the global storedBytes
			// stays balanced) — a stats nuance accepted in exchange for
			// not coordinating accounting across in-flight commits.
			if e.refs == 0 && ch.countNew {
				newBytes += ch.size
				c.storedBytes.Add(ch.size)
			}
			e.refs++
			e.pending++
			for _, loc := range ch.locs {
				e.locations[loc] = struct{}{}
			}
			applied = append(applied, i)
		}
		sh.unlock()
		if chargeErr != nil {
			sub := make([]chunkCharge, len(applied))
			for j, i := range applied {
				sub[j] = charges[i]
			}
			c.unchargeChunks(sub)
			return 0, chargeErr
		}
	}
	return newBytes, nil
}

// forEachIDShard groups chunk IDs by stripe and runs fn once per touched
// stripe under its write lock — one acquisition per stripe instead of one
// per chunk for the batch mutation paths below.
func (c *catalog) forEachIDShard(ids []core.ChunkID, fn func(sh *chunkShard, idx []int)) {
	if len(ids) == 0 {
		return
	}
	byShard := make(map[uint32][]int)
	for i, id := range ids {
		si := c.ckIndexOf(id)
		byShard[si] = append(byShard[si], i)
	}
	for si, idx := range byShard {
		sh := c.ck[si]
		sh.lock()
		fn(sh, idx)
		sh.unlock()
	}
}

func chargeIDs(charges []chunkCharge) []core.ChunkID {
	ids := make([]core.ChunkID, len(charges))
	for i := range charges {
		ids[i] = charges[i].id
	}
	return ids
}

// confirmChunks publishes references taken by chargeChunks once their
// version is visible in a dataset shard.
func (c *catalog) confirmChunks(charges []chunkCharge) {
	c.forEachIDShard(chargeIDs(charges), func(sh *chunkShard, idx []int) {
		for _, i := range idx {
			if e, ok := sh.chunks[charges[i].id]; ok {
				e.pending--
			}
		}
	})
}

// unchargeChunks rolls back pending references taken by a failed
// chargeChunks. Entries whose last reference this was disappear; chunk
// bytes already uploaded for them become unreferenced and the benefactor
// GC reclaims them.
func (c *catalog) unchargeChunks(charges []chunkCharge) {
	c.forEachIDShard(chargeIDs(charges), func(sh *chunkShard, idx []int) {
		for _, i := range idx {
			if e, ok := sh.chunks[charges[i].id]; ok {
				e.pending--
				e.refs--
				if e.refs <= 0 {
					c.storedBytes.Add(-e.size)
					delete(sh.chunks, charges[i].id)
				}
			}
		}
	})
}

// dropChunkRefs removes one reference per chunk ID and returns the chunks
// whose reference count dropped to zero (now orphaned; benefactor GC reaps
// them). IDs must be unique.
func (c *catalog) dropChunkRefs(ids []core.ChunkID) []core.ChunkID {
	var orphans []core.ChunkID
	c.forEachIDShard(ids, func(sh *chunkShard, idx []int) {
		for _, i := range idx {
			e, ok := sh.chunks[ids[i]]
			if !ok {
				continue
			}
			e.refs--
			if e.refs <= 0 {
				c.storedBytes.Add(-e.size)
				delete(sh.chunks, ids[i])
				orphans = append(orphans, ids[i])
			}
		}
	})
	return orphans
}

// chargePlan builds the unique-chunk charge list for a chunk sequence:
// the first occurrence takes the reference, later occurrences only merge
// locations. trusted marks chunks from an already-validated source (a
// recovered chunk-map): location-less chunks are then created rather than
// required to exist, and first references always count as stored bytes.
func chargePlan(chunks []proto.CommitChunk, trusted bool) []chunkCharge {
	charges := make([]chunkCharge, 0, len(chunks))
	seen := make(map[core.ChunkID]int, len(chunks))
	for _, ch := range chunks {
		if at, dup := seen[ch.ID]; dup {
			cg := &charges[at]
			cg.locs = append(cg.locs, ch.Locations...)
			if len(ch.Locations) == 0 && !trusted {
				cg.requireExisting = true
			}
			continue
		}
		seen[ch.ID] = len(charges)
		charges = append(charges, chunkCharge{
			id:              ch.ID,
			size:            ch.Size,
			locs:            append([]core.NodeID(nil), ch.Locations...),
			requireExisting: len(ch.Locations) == 0 && !trusted,
			countNew:        len(ch.Locations) > 0 || trusted,
		})
	}
	return charges
}

// commitPlan turns a commit's chunk list into validated refs plus the
// unique-chunk charge plan.
func commitPlan(fileName string, chunkSize int64, variable bool, fileSize int64, chunks []proto.CommitChunk) ([]core.ChunkRef, []chunkCharge, error) {
	refs := make([]core.ChunkRef, len(chunks))
	var total int64
	for i, ch := range chunks {
		if ch.Size <= 0 || ch.Size > chunkSize {
			return nil, nil, fmt.Errorf("commit %s: chunk %d size %d invalid", fileName, i, ch.Size)
		}
		if !variable && i < len(chunks)-1 && ch.Size != chunkSize {
			return nil, nil, fmt.Errorf("commit %s: non-final chunk %d has size %d, fixed chunking wants %d", fileName, i, ch.Size, chunkSize)
		}
		refs[i] = core.ChunkRef{Index: i, ID: ch.ID, Size: ch.Size}
		total += ch.Size
	}
	if total != fileSize {
		return nil, nil, fmt.Errorf("commit %s: chunks sum to %d, file size %d", fileName, total, fileSize)
	}
	return refs, chargePlan(chunks, false), nil
}

// commit atomically publishes a version. Chunks without explicit locations
// must already exist in the content index (copy-on-write reuse); chunks
// with locations are new uploads. Returns the version and the number of
// newly stored bytes.
//
// Copy-on-write sharing is purely content-addressed, so versions committed
// with different chunking regimes — or different CbCH boundary sets — share
// whatever chunks happen to hash identically; the per-chunk Size recorded
// in the content index is the only cross-version size constraint.
//
// Concurrency: chunk references are taken first as pending (each
// atomically under its stripe lock, with rollback on validation failure),
// then the version is published under the dataset's stripe lock, then the
// references are confirmed. A version is therefore never visible with
// unreferenced chunks, a concurrent delete can never orphan a chunk this
// commit already holds a reference to, and a commit that fails validation
// was never observable by dedup probes or copy-on-write validation — the
// same all-or-nothing visibility the single-lock catalog gave.
func (c *catalog) commit(fileName string, folder string, replication int, chunkSize int64, variable bool, fileSize int64, chunks []proto.CommitChunk, writer string) (*core.ChunkMap, int64, error) {
	key := namespace.DatasetOf(fileName)
	refs, charges, err := commitPlan(fileName, chunkSize, variable, fileSize, chunks)
	if err != nil {
		return nil, 0, err
	}
	newBytes, err := c.chargeChunks(fileName, charges)
	if err != nil {
		return nil, 0, err
	}

	sh := c.dsShardOf(key)
	sh.lock()
	ds, ok := sh.byName[key]
	created := false
	if !ok {
		ds = &dataset{
			id:     c.claimDatasetID(0),
			name:   key,
			folder: namespace.FolderOf(fileName),
		}
		sh.byName[key] = ds
		created = true
	}
	// Journal before any effect of this commit becomes visible. On journal
	// failure the commit rolls back completely — pending chunk references
	// were never observable, and a dataset shell created above is removed —
	// so an acknowledged commit is always a journaled one.
	if c.journalHook != nil {
		if err := c.journalHook(journalEntry{
			Op: "commit", Name: fileName, Replication: replication,
			ChunkSize: chunkSize, Variable: variable, FileSize: fileSize, Chunks: chunks,
			Writer: writer,
		}); err != nil {
			if created {
				delete(sh.byName, key)
				c.releaseDatasetID(ds.id)
			}
			sh.unlock()
			c.unchargeChunks(charges)
			return nil, 0, fmt.Errorf("commit %s: journal: %w", fileName, err)
		}
	}
	if replication > 0 {
		ds.replication = replication
	}
	v := &version{
		id:          core.VersionID(c.nextVersion.Add(1)),
		fileName:    fileName,
		fileSize:    fileSize,
		chunkSize:   chunkSize,
		variable:    variable,
		chunks:      refs,
		newBytes:    newBytes,
		committedAt: time.Now(),
		writer:      writer,
	}
	ds.versions = append(ds.versions, v)
	c.logicalBytes.Add(fileSize)
	// Drop the dataset's memoized maps while the write lock is held: the
	// version chain changed, and chargeChunks may have merged fresh
	// locations into chunks earlier versions share.
	c.maps.invalidateDataset(key)
	m := c.buildMap(ds, v)
	// Confirm inside the dataset critical section: the instant the version
	// becomes visible (lock release) its chunks are published, and no
	// delete of this version can interleave between publish and confirm
	// (which could otherwise decrement a re-created entry's pending count).
	c.confirmChunks(charges)
	sh.unlock()
	return m, newBytes, nil
}

// buildMap materializes a core.ChunkMap for a version, with current
// locations from the content index. Callers hold the dataset's shard lock
// (read or write); chunk stripes are read-locked per touched stripe.
func (c *catalog) buildMap(ds *dataset, v *version) *core.ChunkMap {
	m := &core.ChunkMap{
		Dataset:   ds.id,
		Version:   v.id,
		FileSize:  v.fileSize,
		ChunkSize: v.chunkSize,
		Variable:  v.variable,
		Chunks:    append([]core.ChunkRef(nil), v.chunks...),
		Locations: make([][]core.NodeID, len(v.chunks)),
		CreatedAt: v.committedAt,
	}
	c.forEachRefShard(v.chunks, true, func(sh *chunkShard, idx []int) {
		for _, i := range idx {
			e := sh.chunks[v.chunks[i].ID]
			if e == nil {
				continue
			}
			locs := make([]core.NodeID, 0, len(e.locations))
			for id := range e.locations {
				locs = append(locs, id)
			}
			sort.Slice(locs, func(a, b int) bool { return locs[a] < locs[b] })
			m.Locations[i] = locs
		}
	})
	return m
}

// forEachRefShard groups refs by chunk stripe and runs fn once per
// touched stripe under its read lock. instrumented selects whether the
// acquisitions count toward the stripe ops/contention metrics: foreground
// client paths do, background maintenance scans (replication) do not, so
// the reported contention ratio measures client-driven serialization.
func (c *catalog) forEachRefShard(refs []core.ChunkRef, instrumented bool, fn func(sh *chunkShard, idx []int)) {
	if len(refs) == 0 {
		return
	}
	byShard := make(map[uint32][]int)
	for i, ref := range refs {
		si := c.ckIndexOf(ref.ID)
		byShard[si] = append(byShard[si], i)
	}
	for si, idx := range byShard {
		sh := c.ck[si]
		if instrumented {
			sh.rlock()
		} else {
			sh.mu.RLock()
		}
		fn(sh, idx)
		sh.runlock()
	}
}

// getMap returns the chunk-map for a file name or dataset key. Version 0
// means the latest version; a full A.Ni.Tj name selects that timestep's
// version if present.
//
// The hot-map cache sits in front of buildMap: a hit serves a clone of
// the memoized wire-ready map (locations already sorted) with no chunk
// stripe traffic; a miss builds, serves, and memoizes. Both run under the
// dataset stripe's RLock, so a commit or delete of this dataset (write
// lock) can never interleave between version resolution and cache fill.
func (c *catalog) getMap(name string, ver core.VersionID) (string, *core.ChunkMap, error) {
	key := namespace.DatasetOf(name)
	sh := c.dsShardOf(key)
	sh.rlock()
	defer sh.runlock()
	ds, v, err := c.lookupLocked(sh, name, ver)
	if err != nil {
		return "", nil, err
	}
	if fileName, m := c.maps.get(key, v.id); m != nil {
		return fileName, m, nil
	}
	gen := c.maps.generation()
	m := c.buildMap(ds, v)
	c.maps.put(gen, key, v.fileName, m.Clone())
	return v.fileName, m, nil
}

// statVersion resolves a name to its committed version identity — the
// MStatVersion fast path. It touches only the dataset stripe (RLock), no
// chunk stripes and no map assembly: the cheapest possible answer to "is
// the version I cached still current?".
func (c *catalog) statVersion(name string) (string, core.DatasetID, core.VersionID, error) {
	sh := c.dsShardOf(namespace.DatasetOf(name))
	sh.rlock()
	defer sh.runlock()
	ds, v, err := c.lookupLocked(sh, name, 0)
	if err != nil {
		return "", 0, 0, err
	}
	return v.fileName, ds.id, v.id, nil
}

// getMapAsOf is getMap with as-of resolution: it serves the newest
// version committed at or before asOf, resolved under the same dataset
// stripe RLock that serves the map — one round trip where the client
// previously paid an MHistory walk plus a getMap. The hot-map cache
// applies unchanged (keyed by the resolved version).
func (c *catalog) getMapAsOf(name string, asOf time.Time) (string, *core.ChunkMap, error) {
	key := namespace.DatasetOf(name)
	sh := c.dsShardOf(key)
	sh.rlock()
	defer sh.runlock()
	ds, v, err := c.lookupAsOfLocked(sh, name, asOf)
	if err != nil {
		return "", nil, err
	}
	if fileName, m := c.maps.get(key, v.id); m != nil {
		return fileName, m, nil
	}
	gen := c.maps.generation()
	m := c.buildMap(ds, v)
	c.maps.put(gen, key, v.fileName, m.Clone())
	return v.fileName, m, nil
}

// statVersionAsOf is statVersion with as-of resolution.
func (c *catalog) statVersionAsOf(name string, asOf time.Time) (string, core.DatasetID, core.VersionID, error) {
	sh := c.dsShardOf(namespace.DatasetOf(name))
	sh.rlock()
	defer sh.runlock()
	ds, v, err := c.lookupAsOfLocked(sh, name, asOf)
	if err != nil {
		return "", 0, 0, err
	}
	return v.fileName, ds.id, v.id, nil
}

// lookupAsOfLocked resolves a name to the newest version committed at or
// before asOf. Callers hold the dataset shard's lock.
func (c *catalog) lookupAsOfLocked(sh *datasetShard, name string, asOf time.Time) (*dataset, *version, error) {
	key := namespace.DatasetOf(name)
	ds, ok := sh.byName[key]
	if !ok || len(ds.versions) == 0 {
		return nil, nil, fmt.Errorf("dataset %q: %w", name, core.ErrNotFound)
	}
	// Versions are ordered oldest-first: the first one at or before asOf,
	// scanning from the newest, is the answer.
	for i := len(ds.versions) - 1; i >= 0; i-- {
		if v := ds.versions[i]; !v.committedAt.After(asOf) {
			return ds, v, nil
		}
	}
	return nil, nil, fmt.Errorf("dataset %q has no version at or before %s: %w",
		name, asOf.Format(time.RFC3339), core.ErrNotFound)
}

// lookupLocked resolves a name (+ optional explicit version) to a version.
// Callers hold the dataset shard's lock.
func (c *catalog) lookupLocked(sh *datasetShard, name string, ver core.VersionID) (*dataset, *version, error) {
	key := namespace.DatasetOf(name)
	ds, ok := sh.byName[key]
	if !ok {
		return nil, nil, fmt.Errorf("dataset %q: %w", name, core.ErrNotFound)
	}
	if len(ds.versions) == 0 {
		return nil, nil, fmt.Errorf("dataset %q has no versions: %w", name, core.ErrNotFound)
	}
	if ver != 0 {
		for _, v := range ds.versions {
			if v.id == ver {
				return ds, v, nil
			}
		}
		return nil, nil, fmt.Errorf("dataset %q version %d: %w", name, ver, core.ErrNotFound)
	}
	if name != key {
		// Full file name: prefer the exact timestep.
		for i := len(ds.versions) - 1; i >= 0; i-- {
			if ds.versions[i].fileName == name {
				return ds, ds.versions[i], nil
			}
		}
		return nil, nil, fmt.Errorf("file %q: %w", name, core.ErrNotFound)
	}
	return ds, ds.versions[len(ds.versions)-1], nil
}

// history returns a dataset's version lineage, oldest first, with
// chunk-sharing measured against each version's immediate predecessor.
// It touches only the dataset stripe (RLock) — no chunk stripes: sharing
// is computed from the versions' own chunk-ref lists.
func (c *catalog) history(name string) (proto.HistoryResp, error) {
	key := namespace.DatasetOf(name)
	sh := c.dsShardOf(key)
	sh.rlock()
	defer sh.runlock()
	ds, ok := sh.byName[key]
	if !ok || len(ds.versions) == 0 {
		return proto.HistoryResp{}, fmt.Errorf("dataset %q: %w", name, core.ErrNotFound)
	}
	resp := proto.HistoryResp{Dataset: ds.id, Folder: ds.folder}
	var prev map[core.ChunkID]struct{}
	for _, v := range ds.versions {
		cur := make(map[core.ChunkID]struct{}, len(v.chunks))
		sharedChunks, sharedBytes := 0, int64(0)
		for _, ref := range v.chunks {
			cur[ref.ID] = struct{}{}
			if _, shared := prev[ref.ID]; shared {
				sharedChunks++
				sharedBytes += ref.Size
			}
		}
		resp.Versions = append(resp.Versions, proto.VersionLineage{
			Version:      v.id,
			Name:         v.fileName,
			FileSize:     v.fileSize,
			NewBytes:     v.newBytes,
			Writer:       v.writer,
			CommittedAt:  v.committedAt,
			Chunks:       len(v.chunks),
			SharedChunks: sharedChunks,
			SharedBytes:  sharedBytes,
		})
		prev = cur
	}
	return resp, nil
}

// chunkSpan identifies one chunk occurrence by content AND position. Two
// versions agree on a byte range exactly when the same chunk hash covers
// the same offset span in both — the invariant the diff below rests on.
type chunkSpan struct {
	id     core.ChunkID
	offset int64
	size   int64
}

// spanSet indexes a version's chunk occurrences by (id, offset, size).
func spanSet(v *version) map[chunkSpan]struct{} {
	spans := make(map[chunkSpan]struct{}, len(v.chunks))
	var off int64
	for _, ref := range v.chunks {
		spans[chunkSpan{id: ref.ID, offset: off, size: ref.Size}] = struct{}{}
		off += ref.Size
	}
	return spans
}

// diff computes the changed byte ranges between versions from and to of
// one dataset (0 = latest), in to's byte space. A range is emitted for
// every to-chunk that does not cover the identical offset span with the
// identical hash in from; bytes outside the ranges are guaranteed equal
// (SHA-1 content addressing), so the ranges are a safe — and, under
// fixed chunking, chunk-exact — superset of the bytewise diff. Ranges
// come out sorted, non-overlapping, and coalesced.
func (c *catalog) diff(name string, from, to core.VersionID) (proto.DiffResp, error) {
	sh := c.dsShardOf(namespace.DatasetOf(name))
	sh.rlock()
	defer sh.runlock()
	_, vf, err := c.lookupLocked(sh, name, from)
	if err != nil {
		return proto.DiffResp{}, err
	}
	_, vt, err := c.lookupLocked(sh, name, to)
	if err != nil {
		return proto.DiffResp{}, err
	}
	resp := proto.DiffResp{
		From: vf.id, To: vt.id,
		FromSize: vf.fileSize, ToSize: vt.fileSize,
	}
	base := spanSet(vf)
	var off int64
	for _, ref := range vt.chunks {
		if _, same := base[chunkSpan{id: ref.ID, offset: off, size: ref.Size}]; !same {
			resp.Ranges = appendRange(resp.Ranges, off, ref.Size)
			resp.DiffBytes += ref.Size
		}
		off += ref.Size
	}
	return resp, nil
}

// appendRange extends the last range when the new span is adjacent,
// otherwise appends. Callers feed spans in ascending offset order.
func appendRange(rs []proto.ByteRange, off, n int64) []proto.ByteRange {
	if k := len(rs); k > 0 && rs[k-1].Offset+rs[k-1].Length == off {
		rs[k-1].Length += n
		return rs
	}
	return append(rs, proto.ByteRange{Offset: off, Length: n})
}

// removeVersionsLocked is the single exit path for committed versions:
// client deletes, replace-policy trims, purges, and retention prunes all
// funnel through it. It journals one "delete" entry per victim BEFORE
// any effect becomes visible (mirroring commit's ordering — and closing
// the old gap where trim/purge removals were never journaled, so replay
// resurrected pruned versions), invalidates the dataset's hot maps in
// exactly one place, dereferences the victims' chunks, and removes the
// dataset entirely when no version survives.
//
// Callers hold sh's write lock and pass victims ∪ kept == ds.versions.
// A journal failure aborts with nothing applied; entries already
// journaled for earlier victims replay as deletes after a crash, which
// is idempotent for every caller (a delete the client retried, or a
// prune the worker would re-select).
func (c *catalog) removeVersionsLocked(sh *datasetShard, ds *dataset, victims, kept []*version) ([]core.ChunkID, error) {
	if len(victims) == 0 {
		return nil, nil
	}
	if c.journalHook != nil {
		for _, v := range victims {
			if err := c.journalHook(journalEntry{Op: "delete", Name: ds.name, Version: v.id}); err != nil {
				return nil, fmt.Errorf("remove %s v%d: journal: %w", ds.name, v.id, err)
			}
		}
	}
	// A removed version must not be servable from the hot-map cache: its
	// chunks may lose their last reference and be garbage collected.
	c.maps.invalidateDataset(ds.name)
	orphans := c.dropVersions(victims)
	ds.versions = kept
	if len(ds.versions) == 0 {
		delete(sh.byName, ds.name)
		c.releaseDatasetID(ds.id)
	}
	return orphans, nil
}

// deleteVersion removes one version (or, with ver == 0, the whole
// dataset). It returns the chunk IDs whose reference count dropped to zero
// (now orphaned; benefactor GC reaps them).
func (c *catalog) deleteVersion(name string, ver core.VersionID) ([]core.ChunkID, error) {
	key := namespace.DatasetOf(name)
	sh := c.dsShardOf(key)
	sh.lock()
	defer sh.unlock()
	ds, ok := sh.byName[key]
	if !ok {
		return nil, fmt.Errorf("dataset %q: %w", name, core.ErrNotFound)
	}
	var victims []*version
	var kept []*version
	switch {
	case ver != 0:
		for _, v := range ds.versions {
			if v.id == ver {
				victims = append(victims, v)
			} else {
				kept = append(kept, v)
			}
		}
		if len(victims) == 0 {
			return nil, fmt.Errorf("dataset %q version %d: %w", name, ver, core.ErrNotFound)
		}
	case name != key:
		for _, v := range ds.versions {
			if v.fileName == name {
				victims = append(victims, v)
			} else {
				kept = append(kept, v)
			}
		}
		if len(victims) == 0 {
			return nil, fmt.Errorf("file %q: %w", name, core.ErrNotFound)
		}
	default:
		victims = ds.versions
		kept = nil
	}
	return c.removeVersionsLocked(sh, ds, victims, kept)
}

// dropVersions decrements refcounts for the victims' chunks and returns
// newly orphaned chunk IDs. Callers hold the owning dataset's shard lock.
func (c *catalog) dropVersions(victims []*version) []core.ChunkID {
	var orphans []core.ChunkID
	for _, v := range victims {
		c.logicalBytes.Add(-v.fileSize)
		seen := make(map[core.ChunkID]struct{}, len(v.chunks))
		unique := make([]core.ChunkID, 0, len(v.chunks))
		for _, ref := range v.chunks {
			if _, dup := seen[ref.ID]; dup {
				continue
			}
			seen[ref.ID] = struct{}{}
			unique = append(unique, ref.ID)
		}
		orphans = append(orphans, c.dropChunkRefs(unique)...)
	}
	return orphans
}

// referenced reports whether a chunk is referenced by any committed
// version (the GC keep-set membership test).
func (c *catalog) referenced(id core.ChunkID) bool {
	sh := c.ck[c.ckIndexOf(id)]
	sh.rlock()
	defer sh.runlock()
	e, ok := sh.chunks[id]
	return ok && e.refs > 0
}

// addLocation records a new replica of a chunk (background replication
// commit of a shadow-map entry).
func (c *catalog) addLocation(id core.ChunkID, node core.NodeID) {
	sh := c.ck[c.ckIndexOf(id)]
	sh.lock()
	defer sh.unlock()
	if e, ok := sh.chunks[id]; ok {
		e.locations[node] = struct{}{}
	}
}

// adoptLocation re-adds a replica location from a re-registration
// inventory, but only for chunks the catalog still knows — committed
// (refs) or mid-commit (pending). It reports whether the chunk was
// adopted; a false return means the caller may declare the chunk garbage
// to the node. Pending chunks count as known so an in-flight commit's
// uploads can never be condemned by a concurrent flap.
func (c *catalog) adoptLocation(id core.ChunkID, node core.NodeID) bool {
	sh := c.ck[c.ckIndexOf(id)]
	sh.lock()
	defer sh.unlock()
	e, ok := sh.chunks[id]
	if !ok || (e.refs <= 0 && e.pending <= 0) {
		return false
	}
	e.locations[node] = struct{}{}
	return true
}

// dropLocation removes one replica location of one chunk (scrub-reported
// corruption) and reports whether it existed. A real drop flushes the
// hot-map cache: a cached map pointing at the quarantined replica would
// send readers to a chunk the node just deleted.
func (c *catalog) dropLocation(id core.ChunkID, node core.NodeID) bool {
	sh := c.ck[c.ckIndexOf(id)]
	sh.lock()
	e, ok := sh.chunks[id]
	if ok {
		_, ok = e.locations[node]
		delete(e.locations, node)
	}
	sh.unlock()
	if ok {
		c.maps.invalidateAll()
	}
	return ok
}

// dropLocationEverywhere removes a node from all chunk location sets
// (permanent decommission; not used for mere offline transitions, where
// the node may come back with its chunks intact). This is the one event
// that shrinks location sets while versions stay alive, so the whole
// hot-map cache is flushed: a node's chunks span datasets, and a cached
// map pointing at the dead replica would defeat reader failover. The
// flush runs after the scrub — its generation bump also discards any map
// built concurrently from half-scrubbed stripes. Returns the number of
// locations dropped (decommission telemetry).
func (c *catalog) dropLocationEverywhere(node core.NodeID) int {
	dropped := 0
	for _, sh := range c.ck {
		sh.lock()
		for _, e := range sh.chunks {
			if _, ok := e.locations[node]; ok {
				delete(e.locations, node)
				dropped++
			}
		}
		sh.unlock()
	}
	c.maps.invalidateAll()
	return dropped
}

// list summarizes datasets, optionally restricted to a folder.
func (c *catalog) list(folder string, online func(core.NodeID) bool) []core.DatasetInfo {
	var out []core.DatasetInfo
	for _, sh := range c.ds {
		sh.rlock()
		for _, ds := range sh.byName {
			if folder != "" && !strings.EqualFold(ds.folder, folder) {
				continue
			}
			out = append(out, c.datasetInfo(ds, online))
		}
		sh.runlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// stat summarizes one dataset.
func (c *catalog) stat(name string, online func(core.NodeID) bool) (core.DatasetInfo, error) {
	key := namespace.DatasetOf(name)
	sh := c.dsShardOf(key)
	sh.rlock()
	defer sh.runlock()
	ds, ok := sh.byName[key]
	if !ok {
		return core.DatasetInfo{}, fmt.Errorf("dataset %q: %w", name, core.ErrNotFound)
	}
	return c.datasetInfo(ds, online), nil
}

// datasetInfo summarizes one dataset. Callers hold its shard lock.
func (c *catalog) datasetInfo(ds *dataset, online func(core.NodeID) bool) core.DatasetInfo {
	info := core.DatasetInfo{ID: ds.id, Name: ds.name, Folder: ds.folder}
	for _, v := range ds.versions {
		info.Versions = append(info.Versions, core.VersionInfo{
			Dataset:     ds.id,
			Version:     v.id,
			Name:        v.fileName,
			FileSize:    v.fileSize,
			StoredBytes: v.newBytes,
			Replication: c.liveReplication(v, online),
			CreatedAt:   v.committedAt,
		})
	}
	return info
}

// liveReplication computes the minimum number of live replicas across a
// version's chunks. Callers hold the version's dataset shard lock.
func (c *catalog) liveReplication(v *version, online func(core.NodeID) bool) int {
	min := -1
	c.forEachRefShard(v.chunks, true, func(sh *chunkShard, idx []int) {
		for _, i := range idx {
			e, ok := sh.chunks[v.chunks[i].ID]
			if !ok {
				min = 0
				continue
			}
			live := 0
			for node := range e.locations {
				if online == nil || online(node) {
					live++
				}
			}
			if min < 0 || live < min {
				min = live
			}
		}
	})
	if min < 0 {
		return 0
	}
	return min
}

// replStatus reports the live replication of a dataset's latest version and
// its target.
func (c *catalog) replStatus(name string, online func(core.NodeID) bool) (proto.ReplStatusResp, error) {
	sh := c.dsShardOf(namespace.DatasetOf(name))
	sh.rlock()
	defer sh.runlock()
	ds, v, err := c.lookupLocked(sh, name, 0)
	if err != nil {
		return proto.ReplStatusResp{}, err
	}
	return proto.ReplStatusResp{
		Version: v.id,
		Level:   c.liveReplication(v, online),
		Target:  ds.replication,
	}, nil
}

// counters snapshots catalog-level statistics.
func (c *catalog) counters() (datasets, versions, uniqueChunks int, logical, stored int64) {
	for _, sh := range c.ds {
		sh.rlock()
		datasets += len(sh.byName)
		for _, ds := range sh.byName {
			versions += len(ds.versions)
		}
		sh.runlock()
	}
	for _, sh := range c.ck {
		sh.rlock()
		uniqueChunks += len(sh.chunks)
		sh.runlock()
	}
	return datasets, versions, uniqueChunks, c.logicalBytes.Load(), c.storedBytes.Load()
}

// stripeSnapshot copies the per-stripe acquisition counters.
func (c *catalog) stripeSnapshot() (ds, ck []proto.StripeStats) {
	ds = make([]proto.StripeStats, len(c.ds))
	for i, sh := range c.ds {
		ds[i] = sh.snapshot()
	}
	ck = make([]proto.StripeStats, len(c.ck))
	for i, sh := range c.ck {
		ck[i] = sh.snapshot()
	}
	return ds, ck
}
