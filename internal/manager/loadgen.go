package manager

import (
	"encoding/binary"

	"stdchk/internal/core"
	"stdchk/internal/proto"
)

// DriveCheckpoint pushes one synthetic writer checkpoint through the
// manager's metadata plane in-process (Invoke): alloc, extend, a batched
// dedup probe, commit, and a chunk-map fetch — the §V.E transaction mix.
// The first half of the chunks is "stable" content identical across the
// writer's versions (uploaded at t=0, copy-on-write references after);
// the rest is fresh per version. Variable (CbCH-style) checkpoints commit
// a shorter final span to exercise variable-size validation.
//
// BenchmarkManagerOps and the managerload experiment share this driver so
// the CI-gated benchmark and the experiment always measure the same
// workload. Returns the number of RPCs issued (also on error, for tps
// accounting).
func DriveCheckpoint(m *Manager, name string, seed int64, t, chunksPer int, chunkSize int64, variable bool) (int64, error) {
	var ops int64
	reserve := int64(chunksPer) * chunkSize / 2

	var alloc proto.AllocResp
	err := m.Invoke(proto.MAlloc, proto.AllocReq{
		Name: name, StripeWidth: 4, ChunkSize: chunkSize,
		Variable: variable, ReserveBytes: reserve, Replication: 1,
	}, &alloc)
	ops++
	if err != nil {
		return ops, err
	}
	locs := make([]core.NodeID, 0, len(alloc.Stripe))
	for _, st := range alloc.Stripe {
		locs = append(locs, st.ID)
	}

	if err := m.Invoke(proto.MExtend, proto.ExtendReq{WriteID: alloc.WriteID, Bytes: reserve}, nil); err != nil {
		return ops + 1, err
	}
	ops++

	ids, chunks, fileSize := BuildCheckpoint(seed, t, chunksPer, chunkSize, variable, locs)

	if err := m.Invoke(proto.MHasChunks, proto.HasReq{IDs: ids}, nil); err != nil {
		return ops + 1, err
	}
	ops++

	if err := m.Invoke(proto.MCommit, proto.CommitReq{WriteID: alloc.WriteID, FileSize: fileSize, Chunks: chunks}, nil); err != nil {
		return ops + 1, err
	}
	ops++

	if err := m.Invoke(proto.MGetMap, proto.GetMapReq{Name: name}, nil); err != nil {
		return ops + 1, err
	}
	ops++
	return ops, nil
}

// DriveCheckpointOps is the number of RPCs one successful DriveCheckpoint
// issues.
const DriveCheckpointOps = 5

// BuildCheckpoint constructs the synthetic commit payload DriveCheckpoint
// pushes: the dedup-probe ID list, the commit chunk list, and the file
// size. The first half of the chunks is stable across the writer's
// versions (uploaded at t=0, copy-on-write references after); the rest is
// fresh per version. Shared with the socket-path federation driver
// (fedload) so the in-process and over-the-wire sweeps measure the same
// workload.
func BuildCheckpoint(seed int64, t, chunksPer int, chunkSize int64, variable bool, locs []core.NodeID) ([]core.ChunkID, []proto.CommitChunk, int64) {
	ids := make([]core.ChunkID, chunksPer)
	chunks := make([]proto.CommitChunk, chunksPer)
	var fileSize int64
	for j := range ids {
		stable := j < chunksPer/2
		ids[j] = loadChunkID(seed, t, j, stable)
		size := chunkSize
		if variable && j == chunksPer-1 {
			size = chunkSize / 2
		}
		chunks[j] = proto.CommitChunk{ID: ids[j], Size: size}
		if !stable || t == 0 {
			chunks[j].Locations = locs
		}
		fileSize += size
	}
	return ids, chunks, fileSize
}

// loadChunkID derives a deterministic content hash for one synthetic
// chunk. Stable chunks keep the same ID across versions (the dedup /
// copy-on-write population); fresh chunks are unique per (version, index).
func loadChunkID(seed int64, t, j int, stable bool) core.ChunkID {
	var b [24]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(seed))
	binary.BigEndian.PutUint64(b[8:16], uint64(j))
	if !stable {
		binary.BigEndian.PutUint64(b[16:24], uint64(t)+1)
	}
	return core.HashChunk(b[:])
}
