package manager

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/proto"
)

func regReq(id string, free int64) proto.RegisterReq {
	return proto.RegisterReq{
		ID:       core.NodeID(id),
		Addr:     id + ":1",
		Capacity: free,
		Free:     free,
	}
}

func TestRegistryRegisterHeartbeatSweep(t *testing.T) {
	r := newRegistry(50*time.Millisecond, 0)
	r.register(regReq("n1", 1000), 0)
	r.register(regReq("n2", 1000), 0)
	if total, online, _, _ := r.counts(); total != 2 || online != 2 {
		t.Fatalf("counts = %d/%d", online, total)
	}
	if err := r.heartbeat(proto.HeartbeatReq{ID: "n1", Free: 900}); err != nil {
		t.Fatal(err)
	}
	if err := r.heartbeat(proto.HeartbeatReq{ID: "ghost"}); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("ghost heartbeat: %v", err)
	}
	// After TTL, both turn suspect.
	suspect, dead := r.sweep(time.Now().Add(100 * time.Millisecond))
	if len(suspect) != 2 || len(dead) != 0 {
		t.Fatalf("sweep = %d suspect, %d dead; want 2, 0", len(suspect), len(dead))
	}
	if r.online("n1") {
		t.Fatal("n1 online after sweep")
	}
	// Re-registration revives.
	r.register(regReq("n1", 500), 0)
	if !r.online("n1") {
		t.Fatal("n1 offline after re-register")
	}
}

func TestRegistryAllocateStripeRoundRobin(t *testing.T) {
	r := newRegistry(time.Minute, 0)
	for i := 0; i < 4; i++ {
		r.register(regReq(fmt.Sprintf("n%d", i), 1<<20), 0)
	}
	// Width 2 stripes must rotate across registrations.
	first, err := r.allocateStripe(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.allocateStripe(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if first[0].ID == second[0].ID {
		t.Fatalf("round robin did not rotate: both stripes start at %s", first[0].ID)
	}
}

func TestRegistryAllocateSkipsFullAndOffline(t *testing.T) {
	r := newRegistry(time.Minute, 0)
	r.register(regReq("big", 1<<20), 0)
	r.register(regReq("small", 10), 0)
	stripe, err := r.allocateStripe(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(stripe) != 1 || stripe[0].ID != "big" {
		t.Fatalf("stripe = %+v, want only 'big'", stripe)
	}
	// Exhaust big's space: reservations accumulate.
	if _, err := r.allocateStripe(1, 1<<20-100); err != nil {
		t.Fatal(err)
	}
	if _, err := r.allocateStripe(1, 100); !errors.Is(err, core.ErrNoBenefactors) {
		t.Fatalf("allocation beyond capacity: %v", err)
	}
	// Releasing reservations restores capacity.
	r.release([]core.NodeID{"big"}, 1<<20-100)
	if _, err := r.allocateStripe(1, 100); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryAllocateEmptyPool(t *testing.T) {
	r := newRegistry(time.Minute, 0)
	if _, err := r.allocateStripe(2, 10); !errors.Is(err, core.ErrNoBenefactors) {
		t.Fatalf("empty pool: %v", err)
	}
}

func TestRegistryPickTargets(t *testing.T) {
	r := newRegistry(time.Minute, 0)
	r.register(regReq("a", 100), 0)
	r.register(regReq("b", 1000), 0)
	r.register(regReq("c", 500), 0)
	targets := r.pickTargets(2, map[core.NodeID]struct{}{"b": {}}, 0)
	if len(targets) != 2 {
		t.Fatalf("%d targets, want 2", len(targets))
	}
	// Most available space first, excluding b.
	if targets[0].ID != "c" || targets[1].ID != "a" {
		t.Fatalf("targets = %v, want [c a]", targets)
	}
}

func commitChunks(seed int64, n int, size int64) ([]proto.CommitChunk, int64) {
	var chunks []proto.CommitChunk
	var total int64
	for i := 0; i < n; i++ {
		data := payloadBytes(seed*100+int64(i), int(size))
		chunks = append(chunks, proto.CommitChunk{
			ID:        core.HashChunk(data),
			Size:      size,
			Locations: []core.NodeID{"n1"},
		})
		total += size
	}
	return chunks, total
}

func payloadBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	state := uint64(seed)*2654435761 + 1
	for i := range b {
		state = state*6364136223846793005 + 1442695040888963407
		b[i] = byte(state >> 56)
	}
	return b
}

func TestCatalogCommitAndGetMap(t *testing.T) {
	c := newCatalog()
	chunks, total := commitChunks(1, 3, 100)
	cm, newBytes, err := c.commit("app.n1.t0", "app", 2, 100, false, total, chunks, "")
	if err != nil {
		t.Fatal(err)
	}
	if newBytes != total {
		t.Fatalf("newBytes = %d, want %d", newBytes, total)
	}
	if err := cm.Validate(); err != nil {
		t.Fatal(err)
	}
	name, got, err := c.getMap("app.n1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if name != "app.n1.t0" {
		t.Fatalf("resolved name %q", name)
	}
	if len(got.Chunks) != 3 || got.FileSize != total {
		t.Fatalf("map mismatch: %+v", got)
	}
}

func TestCatalogCommitValidation(t *testing.T) {
	c := newCatalog()
	chunks, total := commitChunks(2, 2, 100)
	tests := []struct {
		name string
		mut  func() ([]proto.CommitChunk, int64)
	}{
		{"size mismatch", func() ([]proto.CommitChunk, int64) { return chunks, total + 1 }},
		{"oversize chunk", func() ([]proto.CommitChunk, int64) {
			bad := append([]proto.CommitChunk(nil), chunks...)
			bad[0].Size = 101
			return bad, total + 1
		}},
		{"zero chunk", func() ([]proto.CommitChunk, int64) {
			bad := append([]proto.CommitChunk(nil), chunks...)
			bad[0].Size = 0
			return bad, total - 100
		}},
		{"unknown shared chunk", func() ([]proto.CommitChunk, int64) {
			bad := append([]proto.CommitChunk(nil), chunks...)
			bad[0].Locations = nil
			return bad, total
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cs, fs := tt.mut()
			if _, _, err := c.commit("x.n1.t0", "x", 1, 100, false, fs, cs, ""); err == nil {
				t.Fatal("invalid commit accepted")
			}
		})
	}
}

func TestCatalogCOWSharing(t *testing.T) {
	c := newCatalog()
	chunks, total := commitChunks(3, 4, 50)
	if _, _, err := c.commit("cow.n1.t0", "cow", 1, 50, false, total, chunks, ""); err != nil {
		t.Fatal(err)
	}
	// Second version shares chunks 0..2 (no locations = COW reference)
	// and adds one new chunk.
	newData := payloadBytes(999, 50)
	shared := []proto.CommitChunk{
		{ID: chunks[0].ID, Size: 50},
		{ID: chunks[1].ID, Size: 50},
		{ID: chunks[2].ID, Size: 50},
		{ID: core.HashChunk(newData), Size: 50, Locations: []core.NodeID{"n2"}},
	}
	_, newBytes, err := c.commit("cow.n1.t1", "cow", 1, 50, false, total, shared, "")
	if err != nil {
		t.Fatal(err)
	}
	if newBytes != 50 {
		t.Fatalf("newBytes = %d, want 50 (one new chunk)", newBytes)
	}
	ds, vs, uniq, logical, stored := c.counters()
	if ds != 1 || vs != 2 {
		t.Fatalf("datasets %d versions %d", ds, vs)
	}
	if uniq != 5 {
		t.Fatalf("unique chunks %d, want 5", uniq)
	}
	if logical != 2*total || stored != total+50 {
		t.Fatalf("logical %d stored %d", logical, stored)
	}

	// Deleting v0 must not orphan the shared chunks.
	orphans, err := c.deleteVersion("cow.n1.t0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 1 {
		t.Fatalf("%d orphans, want 1 (only v0's unshared chunk)", len(orphans))
	}
	if orphans[0] != chunks[3].ID {
		t.Fatal("wrong chunk orphaned")
	}
	// v1 still fully resolvable.
	_, m, err := c.getMap("cow.n1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogDeleteWholeDataset(t *testing.T) {
	c := newCatalog()
	chunks, total := commitChunks(4, 2, 10)
	if _, _, err := c.commit("d.n1.t0", "d", 1, 10, false, total, chunks, ""); err != nil {
		t.Fatal(err)
	}
	orphans, err := c.deleteVersion("d.n1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 2 {
		t.Fatalf("%d orphans, want 2", len(orphans))
	}
	if _, _, err := c.getMap("d.n1", 0); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("getMap after delete: %v", err)
	}
	if _, err := c.deleteVersion("d.n1", 0); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestCatalogHasChunksAndReferenced(t *testing.T) {
	c := newCatalog()
	chunks, total := commitChunks(5, 2, 10)
	ghost := core.HashChunk([]byte("ghost"))
	if _, _, err := c.commit("h.n1.t0", "h", 1, 10, false, total, chunks, ""); err != nil {
		t.Fatal(err)
	}
	got := c.hasChunks([]core.ChunkID{chunks[0].ID, ghost})
	if !got[0] || got[1] {
		t.Fatalf("hasChunks = %v", got)
	}
	if !c.referenced(chunks[0].ID) || c.referenced(ghost) {
		t.Fatal("referenced() wrong")
	}
}

func TestCatalogTrimVersions(t *testing.T) {
	c := newCatalog()
	for ts := 0; ts < 5; ts++ {
		chunks, total := commitChunks(int64(10+ts), 2, 10)
		if _, _, err := c.commit(fmt.Sprintf("t.n1.t%d", ts), "t", 1, 10, false, total, chunks, ""); err != nil {
			t.Fatal(err)
		}
	}
	removed, orphans, err := c.retain("t.n1", core.Retention{KeepLast: 2})
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Fatalf("removed %d, want 3", removed)
	}
	if len(orphans) != 6 {
		t.Fatalf("%d orphans, want 6", len(orphans))
	}
	info, err := c.stat("t.n1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Versions) != 2 {
		t.Fatalf("%d versions left, want 2", len(info.Versions))
	}
	if info.Versions[0].Name != "t.n1.t3" {
		t.Fatalf("oldest survivor %s, want t.n1.t3", info.Versions[0].Name)
	}
}

func TestCatalogPurgeOlderThan(t *testing.T) {
	c := newCatalog()
	chunks, total := commitChunks(20, 2, 10)
	if _, _, err := c.commit("p.n1.t0", "p", 1, 10, false, total, chunks, ""); err != nil {
		t.Fatal(err)
	}
	// Nothing younger than the far past.
	if removed, _, err := c.applyRetention("p", core.Retention{}, time.Now().Add(-time.Hour)); err != nil || removed != 0 {
		t.Fatalf("purged %d (err %v), want 0", removed, err)
	}
	if removed, _, err := c.applyRetention("p", core.Retention{}, time.Now().Add(time.Hour)); err != nil || removed != 1 {
		t.Fatalf("purged %d (err %v), want 1", removed, err)
	}
	if _, err := c.stat("p.n1", nil); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("stat after purge: %v", err)
	}
}

// TestCatalogDryRunRetentionMatchesSweep pins the audit contract: the
// dry run names exactly the versions the real sweep would remove, and
// names them without removing anything.
func TestCatalogDryRunRetentionMatchesSweep(t *testing.T) {
	c := newCatalog()
	for ts := 0; ts < 5; ts++ {
		chunks, total := commitChunks(int64(40+ts), 2, 10)
		if _, _, err := c.commit(fmt.Sprintf("dr.n1.t%d", ts), "dr", 1, 10, false, total, chunks, ""); err != nil {
			t.Fatal(err)
		}
	}
	victims := c.dryRunRetention("dr", core.Retention{KeepLast: 2}, time.Time{})
	if len(victims) != 3 {
		t.Fatalf("dry run names %d victims, want 3: %+v", len(victims), victims)
	}
	for i, v := range victims {
		want := fmt.Sprintf("dr.n1.t%d", i)
		if v.Name != want {
			t.Fatalf("victim %d is %q, want %q", i, v.Name, want)
		}
		if v.FileSize <= 0 || v.Version == 0 || v.CommittedAt.IsZero() {
			t.Fatalf("victim %d lacks identity fields: %+v", i, v)
		}
	}
	// Auditing mutated nothing.
	info, err := c.stat("dr.n1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Versions) != 5 {
		t.Fatalf("dry run removed versions: %d left, want 5", len(info.Versions))
	}
	// The real sweep removes exactly the predicted set.
	removed, _, err := c.applyRetention("dr", core.Retention{KeepLast: 2}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if removed != len(victims) {
		t.Fatalf("sweep removed %d versions, dry run predicted %d", removed, len(victims))
	}
	info, err = c.stat("dr.n1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Versions) != 2 || info.Versions[0].Name != "dr.n1.t3" {
		t.Fatalf("post-sweep survivors: %+v", info.Versions)
	}
}

func TestCatalogUnderReplicated(t *testing.T) {
	c := newCatalog()
	chunks, total := commitChunks(30, 3, 10)
	if _, _, err := c.commit("u.n1.t0", "u", 2, 10, false, total, chunks, ""); err != nil {
		t.Fatal(err)
	}
	jobs := c.underReplicated(nil)
	if len(jobs) != 3 {
		t.Fatalf("%d jobs, want 3 (all chunks at level 1, target 2)", len(jobs))
	}
	for _, j := range jobs {
		if j.needed != 1 || len(j.sources) != 1 {
			t.Fatalf("job = %+v", j)
		}
	}
	// Marking n1 offline leaves no live source: no jobs (nothing to copy from).
	jobs = c.underReplicated(func(core.NodeID) bool { return false })
	if len(jobs) != 0 {
		t.Fatalf("%d jobs with all nodes offline, want 0", len(jobs))
	}
	// Adding locations to target level silences the scheduler.
	for _, ch := range chunks {
		c.addLocation(ch.ID, "n2")
	}
	if jobs := c.underReplicated(nil); len(jobs) != 0 {
		t.Fatalf("%d jobs after repair, want 0", len(jobs))
	}
}

func TestCatalogUnderReplicatedSharedChunkMaxTarget(t *testing.T) {
	c := newCatalog()
	// One chunk, already on two nodes, referenced by dataset A (target 2)
	// and dataset B (target 3): B's higher target must still produce a
	// job with needed=1 regardless of which dataset the scan meets first.
	data := payloadBytes(900, 10)
	shared := []proto.CommitChunk{{
		ID: core.HashChunk(data), Size: 10, Locations: []core.NodeID{"n1", "n2"},
	}}
	if _, _, err := c.commit("ua.n1.t0", "ua", 2, 10, false, 10, shared, ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.commit("ub.n1.t0", "ub", 3, 10, false, 10, shared, ""); err != nil {
		t.Fatal(err)
	}
	jobs := c.underReplicated(nil)
	if len(jobs) != 1 {
		t.Fatalf("%d jobs, want 1 (shared chunk under B's target 3)", len(jobs))
	}
	if jobs[0].needed != 1 || len(jobs[0].sources) != 2 {
		t.Fatalf("job = %+v, want needed=1 from 2 sources", jobs[0])
	}
}

func TestSessionTableLifecycle(t *testing.T) {
	st := newSessionTable(time.Minute)
	s := st.open("a.n1.t0", []proto.Stripe{{ID: "n1", Addr: "x"}}, 100, false, 2, 50, "")
	if s.id == 0 {
		t.Fatal("zero session id")
	}
	got, err := st.get(s.id)
	if err != nil || got != s {
		t.Fatalf("get: %v", err)
	}
	ids, err := st.extend(s.id, 25)
	if err != nil || len(ids) != 1 {
		t.Fatalf("extend: %v", err)
	}
	if s.perNode != 75 {
		t.Fatalf("perNode = %d, want 75", s.perNode)
	}
	closed, err := st.close(s.id)
	if err != nil || closed != s {
		t.Fatalf("close: %v", err)
	}
	if _, err := st.close(s.id); !errors.Is(err, core.ErrAlreadyCommitted) {
		t.Fatalf("double close: %v", err)
	}
	if _, err := st.get(s.id); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("get after close: %v", err)
	}
}

func TestSessionTableExpiry(t *testing.T) {
	st := newSessionTable(10 * time.Millisecond)
	st.open("a.n1.t0", nil, 100, false, 1, 10, "")
	st.open("b.n1.t0", nil, 100, false, 1, 10, "")
	if st.active() != 2 {
		t.Fatalf("active = %d", st.active())
	}
	dead := st.expire(time.Now().Add(time.Second))
	if len(dead) != 2 || st.active() != 0 {
		t.Fatalf("expired %d, active %d", len(dead), st.active())
	}
}

func TestPerNodeShare(t *testing.T) {
	tests := []struct {
		bytes int64
		width int
		want  int64
	}{
		{100, 4, 25},
		{101, 4, 26},
		{0, 4, 0},
		{100, 0, 0},
		{1, 8, 1},
	}
	for _, tt := range tests {
		if got := perNodeShare(tt.bytes, tt.width); got != tt.want {
			t.Errorf("perNodeShare(%d,%d) = %d, want %d", tt.bytes, tt.width, got, tt.want)
		}
	}
}

func TestPolicyTable(t *testing.T) {
	pt := newPolicyTable()
	if got := pt.get("nope"); got.Kind != core.PolicyNone {
		t.Fatalf("default policy = %v", got)
	}
	pt.set("a", core.Policy{Kind: core.PolicyPurge, PurgeAfter: time.Minute})
	pt.set("b", core.Policy{Kind: core.PolicyReplace})
	if folders := pt.enforcedFolders(); len(folders) != 1 {
		t.Fatalf("enforcedFolders = %v", folders)
	}
	// A retention schedule makes a folder background-enforced regardless
	// of its lifetime kind.
	pt.set("c", core.Policy{Kind: core.PolicyNone, Retention: core.Retention{KeepLast: 3}})
	if folders := pt.enforcedFolders(); len(folders) != 2 {
		t.Fatalf("enforcedFolders with retention = %v", folders)
	}
}
