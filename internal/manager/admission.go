package manager

import (
	"sync/atomic"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/proto"
)

// defaultRetryAfterHint is the backoff handed to shed callers when the
// config does not name one. It is deliberately small: a shed op is
// metadata-sized, so the queue drains in milliseconds and a longer hint
// would only inflate tail latency under transient bursts.
const defaultRetryAfterHint = 2 * time.Millisecond

// admission is the manager's global load-shedding gate. Mutating
// metadata ops (alloc, extend, commit) enter before dispatch and exit
// after their response is built; when the pending count would exceed the
// configured bound the op is rejected immediately with a typed
// core.ErrRetryAfter instead of queueing — bounded queues are what keeps
// an overloaded manager answering at all (every accepted op still
// completes in bounded time, and the reject itself is nearly free).
//
// A zero bound disables shedding but keeps the depth accounting, so the
// unbounded ablation still reports its (unbounded) queue growth.
type admission struct {
	max  int
	hint time.Duration

	cur      atomic.Int64
	peak     atomic.Int64
	admitted atomic.Int64
	shed     atomic.Int64
	connShed atomic.Int64
}

func newAdmission(maxPending int, hint time.Duration) *admission {
	if hint <= 0 {
		hint = defaultRetryAfterHint
	}
	return &admission{max: maxPending, hint: hint}
}

// enter admits one gated op or rejects it with retry-after. On success
// the caller must pair it with exit.
func (a *admission) enter() error {
	for {
		cur := a.cur.Load()
		if a.max > 0 && cur >= int64(a.max) {
			a.shed.Add(1)
			return core.ErrRetryAfter{Delay: a.hint}
		}
		if !a.cur.CompareAndSwap(cur, cur+1) {
			continue
		}
		a.admitted.Add(1)
		a.bumpPeak(cur + 1)
		return nil
	}
}

// exit releases an admitted op's queue slot.
func (a *admission) exit() { a.cur.Add(-1) }

func (a *admission) bumpPeak(depth int64) {
	for {
		peak := a.peak.Load()
		if depth <= peak || a.peak.CompareAndSwap(peak, depth) {
			return
		}
	}
}

// overloadHook is installed as the wire server's per-connection shed
// policy: a session-tagged frame arriving past the connection's inflight
// budget is rejected here, before the dispatcher ever decodes it.
func (a *admission) overloadHook(op string) error {
	a.connShed.Add(1)
	return core.ErrRetryAfter{Delay: a.hint}
}

// snapshot exports the gate's counters.
func (a *admission) snapshot() proto.AdmissionStats {
	return proto.AdmissionStats{
		MaxPending:       a.max,
		QueueDepth:       a.cur.Load(),
		PeakQueueDepth:   a.peak.Load(),
		Admitted:         a.admitted.Load(),
		Shed:             a.shed.Load(),
		ConnShed:         a.connShed.Load(),
		RetryAfterMicros: a.hint.Microseconds(),
	}
}
