package manager

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"stdchk/internal/core"
	"stdchk/internal/namespace"
	"stdchk/internal/proto"
)

// journalEntry is one record of the manager's append-only metadata
// journal. Replaying the journal in order reconstructs the catalog after a
// manager restart (the engineered alternative to the paper's
// benefactor-quorum recovery, which is also implemented; see recovery.go).
type journalEntry struct {
	Op          string              `json:"op"` // commit | delete | policy
	Name        string              `json:"name"`
	Version     core.VersionID      `json:"version,omitempty"`
	Replication int                 `json:"replication,omitempty"`
	ChunkSize   int64               `json:"chunkSize,omitempty"`
	Variable    bool                `json:"variable,omitempty"`
	FileSize    int64               `json:"fileSize,omitempty"`
	Chunks      []proto.CommitChunk `json:"chunks,omitempty"`
	Policy      *core.Policy        `json:"policy,omitempty"`
}

// journal is the append-only writer plus the entries found at open time.
//
// Two append modes share the type. Synchronous (historical) appends
// marshal, write and flush inline under the journal mutex — callers hold
// their dataset stripe's critical section, so every journaled mutation in
// the process serializes on that mutex. Asynchronous (default) appends
// only take an order ticket and enqueue: record assigns a strictly
// increasing sequence number (inside the caller's stripe critical
// section, which is what makes ticket order match publication order — see
// catalog.journalHook) and a single writer goroutine appends entries in
// ticket order, flushing when its queue goes quiet instead of per record.
// Commits regain full stripe parallelism; the cost is a small window of
// acknowledged-but-unjournaled entries (queued or buffered, never
// fsynced) that a process crash loses. Clean shutdown loses nothing:
// close drains the queue and flushes before the file closes. Deployments
// that cannot accept the window set Config.SyncJournal.
type journal struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	entries []journalEntry

	// sync selects the historical inline append mode.
	sync bool

	// Async mode. closeMu lets concurrent records (RLock) ticket and
	// enqueue in parallel while close (Lock) waits them out before
	// closing the queue; seq is the order ticket; done signals the writer
	// goroutine has drained and flushed.
	closeMu sync.RWMutex
	closed  bool
	seq     atomic.Uint64
	queue   chan seqEntry
	done    chan struct{}
	logf    func(format string, args ...interface{})
}

type seqEntry struct {
	seq uint64
	e   journalEntry
}

// journalQueueDepth bounds acknowledged-but-unwritten entries. A full
// queue applies backpressure to committers (the enqueue blocks inside the
// stripe critical section), which also bounds the crash window.
const journalQueueDepth = 1024

// openJournal reads any existing entries and opens the file for appends.
// syncMode selects inline (historical) appends; otherwise the ordered
// async writer goroutine is started. logf receives append failures (they
// are logged, not fatal — the paper's quorum recovery remains available).
func openJournal(path string, syncMode bool, logf func(string, ...interface{})) (*journal, error) {
	entries, err := readJournal(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open journal %s: %w", path, err)
	}
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	j := &journal{f: f, w: bufio.NewWriter(f), entries: entries, sync: syncMode, logf: logf}
	if !syncMode {
		j.queue = make(chan seqEntry, journalQueueDepth)
		j.done = make(chan struct{})
		go j.writeLoop()
	}
	return j, nil
}

func readJournal(path string) ([]journalEntry, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("read journal %s: %w", path, err)
	}
	defer f.Close()
	var entries []journalEntry
	dec := json.NewDecoder(bufio.NewReader(f))
	for {
		var e journalEntry
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			// A torn final record (crash mid-append) ends the usable
			// prefix; everything before it is intact.
			break
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// record appends one entry. Synchronous mode writes and flushes inline;
// asynchronous mode assigns the next order ticket and enqueues, leaving
// marshal/write/flush to the writer goroutine. Callers inside a dataset
// stripe critical section therefore hold it only for an atomic increment
// and a channel send.
func (j *journal) record(e journalEntry) error {
	if j.sync {
		j.mu.Lock()
		defer j.mu.Unlock()
		if j.f == nil {
			return core.ErrClosed
		}
		if err := j.appendLocked(e); err != nil {
			return err
		}
		return j.w.Flush()
	}
	j.closeMu.RLock()
	defer j.closeMu.RUnlock()
	if j.closed {
		return core.ErrClosed
	}
	j.queue <- seqEntry{seq: j.seq.Add(1), e: e}
	return nil
}

// appendLocked marshals and buffers one entry. Callers hold j.mu.
func (j *journal) appendLocked(e journalEntry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: marshal: %w", err)
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	return nil
}

// writeLoop is the async writer: it reorders arrivals into ticket order
// (concurrent enqueuers can interleave between Add and send) and appends
// each entry exactly when its ticket is next, flushing whenever the queue
// goes quiet rather than per record. Every allocated ticket is delivered
// before the queue closes (record holds closeMu.RLock across ticket and
// send; close takes the write lock first), so the loop never exits with a
// gap outstanding.
func (j *journal) writeLoop() {
	defer close(j.done)
	next := uint64(1)
	pending := make(map[uint64]journalEntry)
	flushed := true
	for se := range j.queue {
		pending[se.seq] = se.e
		for {
			e, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			j.mu.Lock()
			err := j.appendLocked(e)
			j.mu.Unlock()
			if err != nil {
				j.logf("journal write failed: %v", err)
				continue
			}
			flushed = false
		}
		if !flushed && len(j.queue) == 0 {
			j.mu.Lock()
			if err := j.w.Flush(); err != nil {
				j.logf("journal flush failed: %v", err)
			}
			j.mu.Unlock()
			flushed = true
		}
	}
	if len(pending) > 0 {
		// Unreachable by construction; refuse to drop entries silently if
		// the construction ever breaks.
		j.logf("journal writer exiting with %d out-of-order entries stranded", len(pending))
	}
}

// close drains the async queue (writing every acknowledged entry in
// ticket order), flushes, and closes the file. Safe to call once; the
// manager guards it with closeOnce.
func (j *journal) close() {
	if !j.sync {
		j.closeMu.Lock()
		if !j.closed {
			j.closed = true
			close(j.queue)
		}
		j.closeMu.Unlock()
		<-j.done
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.w.Flush()
		j.f.Close()
		j.f = nil
	}
}

// journalRecord writes an entry if journaling is enabled; journal failures
// are logged, not fatal (the paper's recovery path remains available).
func (m *Manager) journalRecord(e journalEntry) {
	if m.journal == nil {
		return
	}
	if err := m.journal.record(e); err != nil {
		m.logf("journal write failed: %v", err)
	}
}

// replayJournal reconstructs the catalog from the journal read at open.
// Replay runs single-threaded before the manager serves, with the
// catalog in replaying mode (lenient copy-on-write validation; see
// catalog.replaying).
func (m *Manager) replayJournal() error {
	m.cat.replaying = true
	defer func() { m.cat.replaying = false }()
	for i, e := range m.journal.entries {
		switch e.Op {
		case "commit":
			_, _, err := m.cat.commit(e.Name, namespace.FolderOf(e.Name), e.Replication, e.ChunkSize, e.Variable, e.FileSize, e.Chunks)
			if err != nil {
				return fmt.Errorf("entry %d (commit %s): %w", i, e.Name, err)
			}
		case "delete":
			if _, err := m.cat.deleteVersion(e.Name, e.Version); err != nil && !errors.Is(err, core.ErrNotFound) {
				return fmt.Errorf("entry %d (delete %s): %w", i, e.Name, err)
			}
		case "policy":
			if e.Policy != nil {
				m.policies.set(e.Name, *e.Policy)
			}
		default:
			return fmt.Errorf("entry %d: unknown journal op %q", i, e.Op)
		}
	}
	if n := len(m.journal.entries); n > 0 {
		m.logf("replayed %d journal entries", n)
	}
	return nil
}
