package manager

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"stdchk/internal/core"
	"stdchk/internal/faultpoint"
	"stdchk/internal/namespace"
	"stdchk/internal/proto"
)

// Fault-injection points on the journal's durability path (no-ops unless a
// test or STDCHK_FAULTPOINTS arms them; see internal/faultpoint).
var (
	fpJournalAppend = faultpoint.Register("manager.journal.append")
	fpJournalFsync  = faultpoint.Register("manager.journal.fsync")
)

// journalEntry is one record of the manager's append-only metadata
// journal. Replaying the journal in order reconstructs the catalog after a
// manager restart (the engineered alternative to the paper's
// benefactor-quorum recovery, which is also implemented; see recovery.go).
//
// Seq is the entry's order ticket, assigned inside the mutating stripe's
// critical section in both journal modes, so it totals-orders journaled
// mutations. Catalog snapshots record the ticket watermark their state
// includes; replay applies only entries past the newest snapshot's
// watermark. Entries written before tickets existed decode as Seq 0 and
// replay whenever no snapshot watermark excludes them.
type journalEntry struct {
	Seq         uint64              `json:"seq,omitempty"`
	Op          string              `json:"op"` // commit | delete | policy | decommission
	Name        string              `json:"name"`
	Version     core.VersionID      `json:"version,omitempty"`
	Replication int                 `json:"replication,omitempty"`
	ChunkSize   int64               `json:"chunkSize,omitempty"`
	Variable    bool                `json:"variable,omitempty"`
	FileSize    int64               `json:"fileSize,omitempty"`
	Chunks      []proto.CommitChunk `json:"chunks,omitempty"`
	Policy      *core.Policy        `json:"policy,omitempty"`
	// Writer is the committing client's declared identity (commit entries
	// only; absent in journals written before writer identity existed).
	Writer string `json:"writer,omitempty"`
}

// journal is the append-only writer plus the entries found at open time.
//
// Two append modes share the type. Synchronous (historical) appends
// marshal, write and flush inline under the journal mutex — callers hold
// their dataset stripe's critical section, so every journaled mutation in
// the process serializes on that mutex. Asynchronous (default) appends
// only take an order ticket and enqueue: record assigns a strictly
// increasing sequence number (inside the caller's stripe critical
// section, which is what makes ticket order match publication order — see
// catalog.journalHook) and a single writer goroutine appends entries in
// ticket order, flushing when its queue goes quiet instead of per record.
// Commits regain full stripe parallelism; the cost is a small window of
// acknowledged-but-unjournaled entries that a process crash loses.
//
// The fsync flag arms power-loss durability: the async writer fsyncs once
// per drained batch and the sync writer once per record, so acknowledged
// commits survive not just a process crash but the machine going dark.
// Fsynced appends are true group commit — the committer blocks until the
// batch carrying its record is fsynced (see seqEntry.ack), so "acknowledged
// but lost" cannot happen, while stripes that ticketed concurrently share
// one fsync. Folders whose policy demands DurabilityFsync get the same
// treatment per record even when the global flag is off (the durable hint
// on record).
//
// Write, flush and fsync failures are sticky: the first one is recorded,
// every subsequent record call fails fast (commits abort instead of
// acknowledging state the journal did not capture), and close returns it.
type journal struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	path    string
	entries []journalEntry

	// sync selects the historical inline append mode; fsync arms
	// per-batch (async) or per-record (sync) fsync.
	sync  bool
	fsync bool

	// firstErr is the sticky first write/flush/fsync failure (guarded by
	// mu).
	firstErr error

	// Async mode. closeMu lets concurrent records (RLock) ticket and
	// enqueue in parallel while close (Lock) waits them out before
	// closing the queue; seq is the order ticket; done signals the writer
	// goroutine has drained and flushed.
	closeMu sync.RWMutex
	closed  bool
	seq     atomic.Uint64
	queue   chan seqEntry
	done    chan struct{}
	logf    func(format string, args ...interface{})

	// Durability counters (ManagerStats.Journal*). batches counts flush
	// batches reaching the file, batchLen the entries they carried (their
	// ratio is the group-commit amortization), fsyncs the fsync syscalls,
	// errs the write/flush/fsync failures observed.
	batches  atomic.Int64
	batchLen atomic.Int64
	fsyncs   atomic.Int64
	errs     atomic.Int64
}

type seqEntry struct {
	seq     uint64
	e       journalEntry
	durable bool
	// ack, when non-nil, receives the batch outcome after this entry's
	// batch is flushed (and fsynced, in fsync mode): group commit blocks
	// the committer until its record is durable, while the writer amortizes
	// one fsync across every stripe's concurrently ticketed records.
	ack chan error
}

// journalQueueDepth bounds acknowledged-but-unwritten entries. A full
// queue applies backpressure to committers (the enqueue blocks inside the
// stripe critical section), which also bounds the crash window.
const journalQueueDepth = 1024

// openJournal reads any existing entries and opens the file for appends.
// A torn final record (crash mid-append) is truncated away with a warning
// — everything before it is intact, matching replay's historical
// tolerance. syncMode selects inline (historical) appends; fsyncMode arms
// group-commit (async) or per-record (sync) fsync. seqFloor lifts the
// ticket counter past a snapshot's watermark (a truncated journal may hold
// no entry at or below it); it must be final here, because the async
// writer's in-order delivery assumes tickets are dense from its starting
// point — raising seq after the writer starts would open a ticket gap it
// waits on forever.
func openJournal(path string, syncMode, fsyncMode bool, logf func(string, ...interface{}), seqFloor uint64) (*journal, error) {
	entries, goodOff, torn, err := scanJournal(path)
	if err != nil {
		return nil, err
	}
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	if torn {
		if err := os.Truncate(path, goodOff); err != nil {
			return nil, fmt.Errorf("truncate torn journal %s: %w", path, err)
		}
		logf("journal %s: truncated torn trailing record at offset %d (%d intact entries)", path, goodOff, len(entries))
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open journal %s: %w", path, err)
	}
	j := &journal{f: f, w: bufio.NewWriter(f), path: path, entries: entries, sync: syncMode, fsync: fsyncMode, logf: logf}
	// Resume ticketing above every persisted ticket and the snapshot
	// watermark so new entries always order after replayed ones.
	for _, e := range entries {
		if e.Seq > j.seq.Load() {
			j.seq.Store(e.Seq)
		}
	}
	j.raiseSeq(seqFloor)
	if !syncMode {
		j.queue = make(chan seqEntry, journalQueueDepth)
		j.done = make(chan struct{})
		go j.writeLoop(j.seq.Load() + 1)
	}
	return j, nil
}

// readJournal returns the journal's intact entry prefix (tests and replay
// helpers; openJournal uses scanJournal to also repair a torn tail).
func readJournal(path string) ([]journalEntry, error) {
	entries, _, _, err := scanJournal(path)
	return entries, err
}

// scanJournal decodes the journal's intact entry prefix and reports where
// it ends: goodOff is the byte offset just past the last whole record and
// torn whether trailing bytes (a crash mid-append) follow it.
func scanJournal(path string) (entries []journalEntry, goodOff int64, torn bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, fmt.Errorf("read journal %s: %w", path, err)
	}
	defer f.Close()
	dec := json.NewDecoder(bufio.NewReader(f))
	for {
		var e journalEntry
		if derr := dec.Decode(&e); derr != nil {
			if errors.Is(derr, io.EOF) {
				// Clean end: only whitespace followed the last record (a
				// truncated record surfaces as ErrUnexpectedEOF or a
				// syntax error, never io.EOF).
				return entries, goodOff, false, nil
			}
			// A torn final record (crash mid-append) ends the usable
			// prefix; everything before it is intact.
			return entries, goodOff, true, nil
		}
		entries = append(entries, e)
		goodOff = dec.InputOffset()
	}
}

// raiseSeq lifts the ticket counter to at least v (snapshot watermark
// floors: entries recorded after a snapshot must ticket past it). Only
// valid before the async writer starts — see openJournal's seqFloor.
func (j *journal) raiseSeq(v uint64) {
	for {
		cur := j.seq.Load()
		if cur >= v || j.seq.CompareAndSwap(cur, v) {
			return
		}
	}
}

// stickyErr returns the first recorded write failure, if any.
func (j *journal) stickyErr() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.firstErr
}

// failLocked records a write/flush/fsync failure. Callers hold j.mu.
func (j *journal) failLocked(err error) {
	j.errs.Add(1)
	if j.firstErr == nil {
		j.firstErr = err
	}
}

// record appends one entry. Synchronous mode tickets, writes, flushes (and
// under fsync mode syncs) inline; asynchronous mode assigns the next order
// ticket and enqueues, leaving marshal/write/flush to the writer
// goroutine. durable asks the writer to fsync the batch carrying this
// entry even when the journal's global fsync mode is off (per-folder
// DurabilityFsync). After any write failure record fails fast: callers
// must not acknowledge state the journal can no longer capture.
func (j *journal) record(e journalEntry, durable bool) error {
	if j.sync {
		j.mu.Lock()
		defer j.mu.Unlock()
		if j.f == nil {
			return core.ErrClosed
		}
		if j.firstErr != nil {
			return fmt.Errorf("journal: failing fast after earlier error: %w", j.firstErr)
		}
		e.Seq = j.seq.Add(1)
		if err := j.appendLocked(e); err != nil {
			j.failLocked(err)
			return err
		}
		if err := j.w.Flush(); err != nil {
			err = fmt.Errorf("journal: flush: %w", err)
			j.failLocked(err)
			return err
		}
		if j.fsync || durable {
			if err := j.syncLocked(); err != nil {
				j.failLocked(err)
				return err
			}
		}
		j.batches.Add(1)
		j.batchLen.Add(1)
		return nil
	}
	if err := j.stickyErr(); err != nil {
		return fmt.Errorf("journal: failing fast after earlier error: %w", err)
	}
	j.closeMu.RLock()
	if j.closed {
		j.closeMu.RUnlock()
		return core.ErrClosed
	}
	se := seqEntry{seq: j.seq.Add(1), e: e, durable: durable}
	if j.fsync || durable {
		// Group commit: this caller blocks until the writer has flushed
		// and fsynced the batch carrying its record, so an acknowledged
		// commit is a durable one. The wait happens after releasing
		// closeMu so a concurrent close can proceed to drain the queue.
		se.ack = make(chan error, 1)
	}
	j.queue <- se
	j.closeMu.RUnlock()
	if se.ack == nil {
		return nil
	}
	if err := <-se.ack; err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// appendLocked marshals and buffers one entry. Callers hold j.mu.
func (j *journal) appendLocked(e journalEntry) error {
	if err := fpJournalAppend.Hit(); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: marshal: %w", err)
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	return nil
}

// syncLocked fsyncs the journal file. Callers hold j.mu with the buffer
// flushed.
func (j *journal) syncLocked() error {
	if err := fpJournalFsync.Hit(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.fsyncs.Add(1)
	return nil
}

// writeLoop is the async writer: it reorders arrivals into ticket order
// (concurrent enqueuers can interleave between Add and send) and appends
// each entry exactly when its ticket is next, flushing — and, in fsync
// mode or when the batch carried a durable-hinted entry, fsyncing — once
// whenever the queue goes quiet rather than per record. Every allocated
// ticket is delivered before the queue closes (record holds closeMu.RLock
// across ticket and send; close takes the write lock first), so the loop
// never exits with a gap outstanding. After a write failure the loop keeps
// draining (so closers never block) but appends nothing more: record fails
// fast on the sticky error, so no new entries are acknowledged either.
func (j *journal) writeLoop(next uint64) {
	defer close(j.done)
	pending := make(map[uint64]seqEntry)
	flushed := true
	batch := int64(0)
	durable := false
	var acks []chan error

	// settle flushes (and, when the batch needs it, fsyncs) the current
	// batch and delivers the outcome to every committer waiting on it.
	settle := func() {
		j.mu.Lock()
		batchErr := j.firstErr
		if batchErr == nil && !flushed {
			if err := j.w.Flush(); err != nil {
				batchErr = fmt.Errorf("journal: flush: %w", err)
				j.failLocked(batchErr)
				j.logf("journal flush failed: %v", err)
			} else if j.fsync || durable {
				if err := j.syncLocked(); err != nil {
					batchErr = err
					j.failLocked(err)
					j.logf("journal fsync failed: %v", err)
				}
			}
		}
		j.mu.Unlock()
		if !flushed {
			j.batches.Add(1)
			j.batchLen.Add(batch)
		}
		for _, ch := range acks {
			ch <- batchErr
		}
		acks = acks[:0]
		batch = 0
		durable = false
		flushed = true
	}

	for se := range j.queue {
		pending[se.seq] = se
		for {
			pe, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			pe.e.Seq = pe.seq
			j.mu.Lock()
			var err error
			if j.firstErr != nil {
				err = j.firstErr
			} else if err = j.appendLocked(pe.e); err != nil {
				j.failLocked(err)
			}
			j.mu.Unlock()
			if pe.ack != nil {
				// Delivered at settle time even when the append failed:
				// the waiter needs the error, not a hang.
				acks = append(acks, pe.ack)
			}
			if err != nil {
				j.logf("journal write failed: %v", err)
				continue
			}
			flushed = false
			batch++
			durable = durable || pe.durable
		}
		// Settle when the queue goes quiet — or when the batch has grown
		// past a bound, so a durable waiter cannot be starved by a steady
		// stream of relaxed entries keeping the queue busy.
		if (!flushed || len(acks) > 0) && (len(j.queue) == 0 || batch >= 256) {
			settle()
		}
	}
	settle()
	if len(pending) > 0 {
		// Unreachable by construction; refuse to drop entries silently if
		// the construction ever breaks.
		j.logf("journal writer exiting with %d out-of-order entries stranded", len(pending))
	}
}

// truncateTo atomically rewrites the journal keeping only entries with
// tickets past the watermark (records a just-written snapshot already
// covers). The kept suffix goes to a temp file that is fsynced and renamed
// over the journal, so a crash at any instant leaves either the full
// journal (snapshot + full replay skips the covered prefix by watermark)
// or the truncated one — never a partial file. Returns how many entries
// were kept and dropped.
func (j *journal) truncateTo(watermark uint64) (kept, dropped int, err error) {
	j.closeMu.RLock()
	defer j.closeMu.RUnlock()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return 0, 0, core.ErrClosed
	}
	if err := j.w.Flush(); err != nil {
		err = fmt.Errorf("journal: flush before truncate: %w", err)
		j.failLocked(err)
		return 0, 0, err
	}
	entries, _, _, err := scanJournal(j.path)
	if err != nil {
		return 0, 0, err
	}
	tmp := j.path + ".truncating"
	tf, err := os.Create(tmp)
	if err != nil {
		return 0, 0, fmt.Errorf("journal: truncate: %w", err)
	}
	bw := bufio.NewWriter(tf)
	for _, e := range entries {
		if e.Seq <= watermark {
			dropped++
			continue
		}
		b, merr := json.Marshal(e)
		if merr != nil {
			tf.Close()
			os.Remove(tmp)
			return 0, 0, fmt.Errorf("journal: truncate: marshal: %w", merr)
		}
		if _, werr := bw.Write(append(b, '\n')); werr != nil {
			tf.Close()
			os.Remove(tmp)
			return 0, 0, fmt.Errorf("journal: truncate: %w", werr)
		}
		kept++
	}
	if err := bw.Flush(); err != nil {
		tf.Close()
		os.Remove(tmp)
		return 0, 0, fmt.Errorf("journal: truncate: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		return 0, 0, fmt.Errorf("journal: truncate: %w", err)
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return 0, 0, fmt.Errorf("journal: truncate: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return 0, 0, fmt.Errorf("journal: truncate: %w", err)
	}
	// The append handle still points at the replaced inode; reopen so new
	// records land in the truncated file.
	old := j.f
	nf, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		err = fmt.Errorf("journal: reopen after truncate: %w", err)
		j.failLocked(err)
		return kept, dropped, err
	}
	old.Close()
	j.f = nf
	j.w = bufio.NewWriter(nf)
	return kept, dropped, nil
}

// counters snapshots the journal durability counters.
func (j *journal) counters() (batches, batchLen, fsyncs, errs int64) {
	if j == nil {
		return 0, 0, 0, 0
	}
	return j.batches.Load(), j.batchLen.Load(), j.fsyncs.Load(), j.errs.Load()
}

// close drains the async queue (writing every acknowledged entry in
// ticket order), flushes, and closes the file. It returns the journal's
// sticky first write error, so callers learn about entries the writer
// could not persist. Safe to call more than once; the manager guards it
// with closeOnce.
func (j *journal) close() error {
	if !j.sync {
		j.closeMu.Lock()
		if !j.closed {
			j.closed = true
			close(j.queue)
		}
		j.closeMu.Unlock()
		<-j.done
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		if err := j.w.Flush(); err != nil {
			j.failLocked(fmt.Errorf("journal: flush: %w", err))
		} else if j.fsync {
			if err := j.syncLocked(); err != nil {
				j.failLocked(err)
			}
		}
		j.f.Close()
		j.f = nil
	}
	return j.firstErr
}

// journalRecord writes an entry if journaling is enabled. Commits and
// deletes into a folder whose policy demands DurabilityFsync carry the
// durable hint, escalating their batch to an fsync even when the manager's
// global fsync mode is off. Failures propagate: the catalog hook aborts
// the surrounding commit/delete instead of acknowledging unjournaled
// state.
func (m *Manager) journalRecord(e journalEntry) error {
	if m.journal == nil {
		return nil
	}
	durable := false
	if !m.journal.fsync && (e.Op == "commit" || e.Op == "delete") {
		durable = m.policies.get(namespace.FolderOf(e.Name)).Durability == core.DurabilityFsync
	}
	if err := m.journal.record(e, durable); err != nil {
		m.logf("journal write failed: %v", err)
		return err
	}
	return nil
}

// policyJournalFn returns the journal callback handed to
// policyTable.setJournaled, or nil when journaling is off. journalRecord
// never touches the policy table for "policy" ops (the durable-hint lookup
// is commit/delete-only), so invoking it under the table's lock is safe.
func (m *Manager) policyJournalFn() func(journalEntry) error {
	if m.journal == nil {
		return nil
	}
	return m.journalRecord
}

// replayJournal reconstructs the catalog from the journal read at open,
// skipping entries a loaded snapshot already covers (ticket <= watermark;
// with no snapshot the watermark is 0 and everything replays, including
// pre-ticket entries that decode as Seq 0). Replay runs single-threaded
// before the manager serves, with the catalog in replaying mode (lenient
// copy-on-write validation; see catalog.replaying).
func (m *Manager) replayJournal(watermark uint64) error {
	m.cat.replaying = true
	defer func() { m.cat.replaying = false }()
	replayed := 0
	for i, e := range m.journal.entries {
		if watermark > 0 && e.Seq <= watermark {
			continue
		}
		replayed++
		switch e.Op {
		case "commit":
			_, _, err := m.cat.commit(e.Name, namespace.FolderOf(e.Name), e.Replication, e.ChunkSize, e.Variable, e.FileSize, e.Chunks, e.Writer)
			if err != nil {
				return fmt.Errorf("entry %d (commit %s): %w", i, e.Name, err)
			}
		case "delete":
			if _, err := m.cat.deleteVersion(e.Name, e.Version); err != nil && !errors.Is(err, core.ErrNotFound) {
				return fmt.Errorf("entry %d (delete %s): %w", i, e.Name, err)
			}
		case "policy":
			if e.Policy != nil {
				m.policies.set(e.Name, *e.Policy)
			}
		case "decommission":
			// Name carries the dead node's ID. Replaying the drop keeps a
			// restarted manager from resurrecting chunk locations on a node
			// that was declared dead before the crash; if the node later
			// rejoins, register's inventory reconciliation re-adopts them.
			m.cat.dropLocationEverywhere(core.NodeID(e.Name))
		default:
			return fmt.Errorf("entry %d: unknown journal op %q", i, e.Op)
		}
	}
	m.stats.journalReplayed.Store(int64(replayed))
	if replayed > 0 {
		m.logf("replayed %d journal entries (watermark %d)", replayed, watermark)
	}
	return nil
}
