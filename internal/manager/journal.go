package manager

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"stdchk/internal/core"
	"stdchk/internal/namespace"
	"stdchk/internal/proto"
)

// journalEntry is one record of the manager's append-only metadata
// journal. Replaying the journal in order reconstructs the catalog after a
// manager restart (the engineered alternative to the paper's
// benefactor-quorum recovery, which is also implemented; see recovery.go).
type journalEntry struct {
	Op          string              `json:"op"` // commit | delete | policy
	Name        string              `json:"name"`
	Version     core.VersionID      `json:"version,omitempty"`
	Replication int                 `json:"replication,omitempty"`
	ChunkSize   int64               `json:"chunkSize,omitempty"`
	Variable    bool                `json:"variable,omitempty"`
	FileSize    int64               `json:"fileSize,omitempty"`
	Chunks      []proto.CommitChunk `json:"chunks,omitempty"`
	Policy      *core.Policy        `json:"policy,omitempty"`
}

// journal is the append-only writer plus the entries found at open time.
type journal struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	entries []journalEntry
}

// openJournal reads any existing entries and opens the file for appends.
func openJournal(path string) (*journal, error) {
	entries, err := readJournal(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open journal %s: %w", path, err)
	}
	return &journal{f: f, w: bufio.NewWriter(f), entries: entries}, nil
}

func readJournal(path string) ([]journalEntry, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("read journal %s: %w", path, err)
	}
	defer f.Close()
	var entries []journalEntry
	dec := json.NewDecoder(bufio.NewReader(f))
	for {
		var e journalEntry
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			// A torn final record (crash mid-append) ends the usable
			// prefix; everything before it is intact.
			break
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// record appends one entry and flushes it.
func (j *journal) record(e journalEntry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return core.ErrClosed
	}
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: marshal: %w", err)
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	return j.w.Flush()
}

func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.w.Flush()
		j.f.Close()
		j.f = nil
	}
}

// journalRecord writes an entry if journaling is enabled; journal failures
// are logged, not fatal (the paper's recovery path remains available).
func (m *Manager) journalRecord(e journalEntry) {
	if m.journal == nil {
		return
	}
	if err := m.journal.record(e); err != nil {
		m.logf("journal write failed: %v", err)
	}
}

// replayJournal reconstructs the catalog from the journal read at open.
// Replay runs single-threaded before the manager serves, with the
// catalog in replaying mode (lenient copy-on-write validation; see
// catalog.replaying).
func (m *Manager) replayJournal() error {
	m.cat.replaying = true
	defer func() { m.cat.replaying = false }()
	for i, e := range m.journal.entries {
		switch e.Op {
		case "commit":
			_, _, err := m.cat.commit(e.Name, namespace.FolderOf(e.Name), e.Replication, e.ChunkSize, e.Variable, e.FileSize, e.Chunks)
			if err != nil {
				return fmt.Errorf("entry %d (commit %s): %w", i, e.Name, err)
			}
		case "delete":
			if _, err := m.cat.deleteVersion(e.Name, e.Version); err != nil && !errors.Is(err, core.ErrNotFound) {
				return fmt.Errorf("entry %d (delete %s): %w", i, e.Name, err)
			}
		case "policy":
			if e.Policy != nil {
				m.policies.set(e.Name, *e.Policy)
			}
		default:
			return fmt.Errorf("entry %d: unknown journal op %q", i, e.Op)
		}
	}
	if n := len(m.journal.entries); n > 0 {
		m.logf("replayed %d journal entries", n)
	}
	return nil
}
