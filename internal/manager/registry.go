package manager

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/proto"
)

// registry is the soft-state benefactor directory (paper §IV.A): nodes
// publish their status and free space via registration and periodic
// heartbeats; missing heartbeats expire a node to offline.
type registry struct {
	ttl time.Duration

	mu     sync.Mutex
	nodes  map[core.NodeID]*benefactorState
	ring   []core.NodeID // registration order, for round-robin allocation
	cursor int
}

type benefactorState struct {
	info     core.BenefactorInfo
	reserved int64 // bytes promised to open write sessions
}

func newRegistry(ttl time.Duration) *registry {
	return &registry{
		ttl:   ttl,
		nodes: make(map[core.NodeID]*benefactorState),
	}
}

// register adds or refreshes a node. Re-registration (a restarted
// benefactor) keeps its identity and clears stale reservations.
func (r *registry) register(req proto.RegisterReq) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.nodes[req.ID]
	if !ok {
		st = &benefactorState{}
		r.nodes[req.ID] = st
		r.ring = append(r.ring, req.ID)
	}
	st.info = core.BenefactorInfo{
		ID:       req.ID,
		Addr:     req.Addr,
		Capacity: req.Capacity,
		Free:     req.Free,
		Online:   true,
		LastSeen: time.Now(),
	}
	st.reserved = 0
}

// heartbeat refreshes a node's soft state. Unknown nodes are rejected so a
// restarted manager forces re-registration (and with it, recovery).
func (r *registry) heartbeat(req proto.HeartbeatReq) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.nodes[req.ID]
	if !ok {
		return fmt.Errorf("heartbeat from unregistered node %s: %w", req.ID, core.ErrNotFound)
	}
	st.info.Free = req.Free
	st.info.ChunkHeld = req.Chunks
	st.info.Online = true
	st.info.LastSeen = time.Now()
	return nil
}

// sweep expires nodes whose heartbeats stopped. It returns the IDs that
// transitioned to offline during this sweep.
func (r *registry) sweep(now time.Time) []core.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	var expired []core.NodeID
	for id, st := range r.nodes {
		if st.info.Online && now.Sub(st.info.LastSeen) > r.ttl {
			st.info.Online = false
			expired = append(expired, id)
		}
	}
	return expired
}

// online reports whether the node is currently considered alive.
func (r *registry) online(id core.NodeID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.nodes[id]
	return ok && st.info.Online
}

// addr returns a node's service address.
func (r *registry) addr(id core.NodeID) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.nodes[id]
	if !ok {
		return "", false
	}
	return st.info.Addr, true
}

// list snapshots all registrations.
func (r *registry) list() []core.BenefactorInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]core.BenefactorInfo, 0, len(r.nodes))
	for _, id := range r.ring {
		st := r.nodes[id]
		info := st.info
		info.Reserved = st.reserved
		out = append(out, info)
	}
	return out
}

// counts returns (total, online) node counts.
func (r *registry) counts() (int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	online := 0
	for _, st := range r.nodes {
		if st.info.Online {
			online++
		}
	}
	return len(r.nodes), online
}

// allocateStripe picks `width` online benefactors in round-robin order
// (paper §IV.A: round-robin striping) that can each accommodate
// perNodeBytes of new reservation, and reserves that space. Fewer than
// `width` nodes may be returned if the pool is small but non-empty; an
// empty pool is an error.
func (r *registry) allocateStripe(width int, perNodeBytes int64) ([]proto.Stripe, error) {
	if width <= 0 {
		width = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) == 0 {
		return nil, core.ErrNoBenefactors
	}
	var stripe []proto.Stripe
	var chosen []*benefactorState
	n := len(r.ring)
	for probe := 0; probe < n && len(stripe) < width; probe++ {
		id := r.ring[(r.cursor+probe)%n]
		st := r.nodes[id]
		if !st.info.Online {
			continue
		}
		if avail := st.info.Free - st.reserved; avail < perNodeBytes {
			continue
		}
		stripe = append(stripe, proto.Stripe{ID: id, Addr: st.info.Addr})
		chosen = append(chosen, st)
	}
	if len(stripe) == 0 {
		return nil, fmt.Errorf("allocate stripe width %d: %w", width, core.ErrNoBenefactors)
	}
	r.cursor = (r.cursor + 1) % n
	for _, st := range chosen {
		st.reserved += perNodeBytes
	}
	return stripe, nil
}

// reserve adds bytes to existing per-node reservations (MExtend).
func (r *registry) reserve(ids []core.NodeID, perNodeBytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, id := range ids {
		if st, ok := r.nodes[id]; ok {
			st.reserved += perNodeBytes
		}
	}
}

// release returns reserved bytes to the pool (commit, abort, session
// expiry).
func (r *registry) release(ids []core.NodeID, perNodeBytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, id := range ids {
		st, ok := r.nodes[id]
		if !ok {
			continue
		}
		st.reserved -= perNodeBytes
		if st.reserved < 0 {
			st.reserved = 0
		}
	}
}

// pickTargets selects up to n online nodes, excluding `exclude`, with the
// most available space first (replication destinations).
func (r *registry) pickTargets(n int, exclude map[core.NodeID]struct{}) []proto.Stripe {
	r.mu.Lock()
	defer r.mu.Unlock()
	type cand struct {
		id    core.NodeID
		addr  string
		avail int64
	}
	var cands []cand
	for id, st := range r.nodes {
		if !st.info.Online {
			continue
		}
		if _, skip := exclude[id]; skip {
			continue
		}
		cands = append(cands, cand{id: id, addr: st.info.Addr, avail: st.info.Free - st.reserved})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].avail != cands[j].avail {
			return cands[i].avail > cands[j].avail
		}
		return cands[i].id < cands[j].id
	})
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]proto.Stripe, 0, n)
	for _, c := range cands[:n] {
		out = append(out, proto.Stripe{ID: c.id, Addr: c.addr})
	}
	return out
}
