package manager

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/proto"
)

// registry is the soft-state benefactor directory (paper §IV.A): nodes
// publish their status and free space via registration and periodic
// heartbeats; missing heartbeats expire a node to offline.
//
// Once the catalog was striped (PR 3), the registry's single mutex was
// the next lock every alloc serialized on. The hot paths now avoid write
// locks entirely: the node table takes its (instrumented) RWMutex in read
// mode for everything except membership changes (register), round-robin
// stripe selection advances an atomic cursor, and per-node soft state
// lives behind a per-node leaf mutex so heartbeats, allocations and
// releases on different nodes never contend. Admission (free minus
// reserved) is checked per node under its leaf lock; two allocations
// racing onto different nodes proceed in parallel, and reservations stay
// exact because each node's reserved counter only changes under its own
// lock.
type registry struct {
	ttl time.Duration

	// tbl guards the nodes map and ring slice (membership), read-mostly.
	tbl    stripedMu
	nodes  map[core.NodeID]*benefactorState
	ring   []core.NodeID // registration order, for round-robin allocation
	cursor atomic.Uint64 // next ring start for stripe allocation

	// per-op counters, exposed as proto.RegistryStats.
	allocs     atomic.Int64
	reserves   atomic.Int64
	releases   atomic.Int64
	heartbeats atomic.Int64
}

type benefactorState struct {
	mu       sync.Mutex // leaf lock: guards info and reserved
	info     core.BenefactorInfo
	reserved int64 // bytes promised to open write sessions
}

func newRegistry(ttl time.Duration) *registry {
	return &registry{
		ttl:   ttl,
		nodes: make(map[core.NodeID]*benefactorState),
	}
}

// register adds or refreshes a node. Re-registration (a restarted
// benefactor) keeps its identity and clears stale reservations. This is
// the only path that takes the table lock in write mode. A new node's
// state is fully populated before it is published into the table, so a
// concurrent reader can never observe a zero-valued registration.
func (r *registry) register(req proto.RegisterReq) {
	info := core.BenefactorInfo{
		ID:       req.ID,
		Addr:     req.Addr,
		Capacity: req.Capacity,
		Free:     req.Free,
		Online:   true,
		LastSeen: time.Now(),
	}
	r.tbl.lock()
	st, ok := r.nodes[req.ID]
	if !ok {
		r.nodes[req.ID] = &benefactorState{info: info}
		r.ring = append(r.ring, req.ID)
		r.tbl.unlock()
		return
	}
	r.tbl.unlock()
	st.mu.Lock()
	st.info = info
	st.reserved = 0
	st.mu.Unlock()
}

// lookup finds a node under the table read lock.
func (r *registry) lookup(id core.NodeID) (*benefactorState, bool) {
	r.tbl.rlock()
	st, ok := r.nodes[id]
	r.tbl.runlock()
	return st, ok
}

// heartbeat refreshes a node's soft state. Unknown nodes are rejected so a
// restarted manager forces re-registration (and with it, recovery).
func (r *registry) heartbeat(req proto.HeartbeatReq) error {
	r.heartbeats.Add(1)
	st, ok := r.lookup(req.ID)
	if !ok {
		return fmt.Errorf("heartbeat from unregistered node %s: %w", req.ID, core.ErrNotFound)
	}
	st.mu.Lock()
	st.info.Free = req.Free
	st.info.ChunkHeld = req.Chunks
	st.info.Online = true
	st.info.LastSeen = time.Now()
	st.mu.Unlock()
	return nil
}

// sweep expires nodes whose heartbeats stopped. It returns the IDs that
// transitioned to offline during this sweep.
func (r *registry) sweep(now time.Time) []core.NodeID {
	r.tbl.rlock()
	defer r.tbl.runlock()
	var expired []core.NodeID
	for id, st := range r.nodes {
		st.mu.Lock()
		if st.info.Online && now.Sub(st.info.LastSeen) > r.ttl {
			st.info.Online = false
			expired = append(expired, id)
		}
		st.mu.Unlock()
	}
	return expired
}

// online reports whether the node is currently considered alive.
func (r *registry) online(id core.NodeID) bool {
	st, ok := r.lookup(id)
	if !ok {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.info.Online
}

// addr returns a node's service address.
func (r *registry) addr(id core.NodeID) (string, bool) {
	st, ok := r.lookup(id)
	if !ok {
		return "", false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.info.Addr, true
}

// list snapshots all registrations.
func (r *registry) list() []core.BenefactorInfo {
	r.tbl.rlock()
	defer r.tbl.runlock()
	out := make([]core.BenefactorInfo, 0, len(r.nodes))
	for _, id := range r.ring {
		st := r.nodes[id]
		st.mu.Lock()
		info := st.info
		info.Reserved = st.reserved
		st.mu.Unlock()
		out = append(out, info)
	}
	return out
}

// counts returns (total, online) node counts.
func (r *registry) counts() (int, int) {
	r.tbl.rlock()
	defer r.tbl.runlock()
	online := 0
	for _, st := range r.nodes {
		st.mu.Lock()
		if st.info.Online {
			online++
		}
		st.mu.Unlock()
	}
	return len(r.nodes), online
}

// allocateStripe picks `width` online benefactors in round-robin order
// (paper §IV.A: round-robin striping) that can each accommodate
// perNodeBytes of new reservation, and reserves that space. Fewer than
// `width` nodes may be returned if the pool is small but non-empty; an
// empty pool is an error.
//
// The table is only read-locked: the rotation point comes from one atomic
// cursor increment, and each candidate is admitted (and charged) under
// its own leaf lock, so concurrent allocations on a wide pool proceed in
// parallel instead of queueing on the registry.
func (r *registry) allocateStripe(width int, perNodeBytes int64) ([]proto.Stripe, error) {
	if width <= 0 {
		width = 1
	}
	r.allocs.Add(1)
	r.tbl.rlock()
	defer r.tbl.runlock()
	n := len(r.ring)
	if n == 0 {
		return nil, core.ErrNoBenefactors
	}
	start := int((r.cursor.Add(1) - 1) % uint64(n))
	var stripe []proto.Stripe
	for probe := 0; probe < n && len(stripe) < width; probe++ {
		id := r.ring[(start+probe)%n]
		st := r.nodes[id]
		st.mu.Lock()
		ok := st.info.Online && st.info.Free-st.reserved >= perNodeBytes
		if ok {
			st.reserved += perNodeBytes
			stripe = append(stripe, proto.Stripe{ID: id, Addr: st.info.Addr})
		}
		st.mu.Unlock()
	}
	if len(stripe) == 0 {
		return nil, fmt.Errorf("allocate stripe width %d: %w", width, core.ErrNoBenefactors)
	}
	return stripe, nil
}

// reserve adds bytes to existing per-node reservations (MExtend).
func (r *registry) reserve(ids []core.NodeID, perNodeBytes int64) {
	r.reserves.Add(1)
	for _, id := range ids {
		if st, ok := r.lookup(id); ok {
			st.mu.Lock()
			st.reserved += perNodeBytes
			st.mu.Unlock()
		}
	}
}

// release returns reserved bytes to the pool (commit, abort, session
// expiry).
func (r *registry) release(ids []core.NodeID, perNodeBytes int64) {
	r.releases.Add(1)
	for _, id := range ids {
		st, ok := r.lookup(id)
		if !ok {
			continue
		}
		st.mu.Lock()
		st.reserved -= perNodeBytes
		if st.reserved < 0 {
			st.reserved = 0
		}
		st.mu.Unlock()
	}
}

// pickTargets selects up to n online nodes, excluding `exclude`, with the
// most available space first (replication destinations).
func (r *registry) pickTargets(n int, exclude map[core.NodeID]struct{}) []proto.Stripe {
	r.tbl.rlock()
	defer r.tbl.runlock()
	type cand struct {
		id    core.NodeID
		addr  string
		avail int64
	}
	var cands []cand
	for id, st := range r.nodes {
		if _, skip := exclude[id]; skip {
			continue
		}
		st.mu.Lock()
		online := st.info.Online
		addr := st.info.Addr
		avail := st.info.Free - st.reserved
		st.mu.Unlock()
		if !online {
			continue
		}
		cands = append(cands, cand{id: id, addr: addr, avail: avail})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].avail != cands[j].avail {
			return cands[i].avail > cands[j].avail
		}
		return cands[i].id < cands[j].id
	})
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]proto.Stripe, 0, n)
	for _, c := range cands[:n] {
		out = append(out, proto.Stripe{ID: c.id, Addr: c.addr})
	}
	return out
}

// statsSnapshot copies the registry's lock and per-op counters.
func (r *registry) statsSnapshot() proto.RegistryStats {
	lk := r.tbl.snapshot()
	return proto.RegistryStats{
		Ops:        lk.Ops,
		Contended:  lk.Contended,
		Allocs:     r.allocs.Load(),
		Reserves:   r.reserves.Load(),
		Releases:   r.releases.Load(),
		Heartbeats: r.heartbeats.Load(),
	}
}
