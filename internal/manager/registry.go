package manager

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/proto"
)

// registry is the soft-state benefactor directory (paper §IV.A): nodes
// publish their status and free space via registration and periodic
// heartbeats; missing heartbeats walk a node down the lifecycle state
// machine online → suspect (past ttl) → dead (past deadAfter, at which
// point the manager decommissions it).
//
// Once the catalog was striped (PR 3), the registry's single mutex was
// the next lock every alloc serialized on. The hot paths now avoid write
// locks entirely: the node table takes its (instrumented) RWMutex in read
// mode for everything except membership changes (register), round-robin
// stripe selection advances an atomic cursor, and per-node soft state
// lives behind a per-node leaf mutex so heartbeats, allocations and
// releases on different nodes never contend. Admission (free minus
// reserved) is checked per node under its leaf lock; two allocations
// racing onto different nodes proceed in parallel, and reservations stay
// exact because each node's reserved counter only changes under its own
// lock.
type registry struct {
	ttl time.Duration
	// deadAfter is the heartbeat silence past which a suspect node is
	// declared dead (0 = never: suspects linger, the pre-lifecycle
	// behavior).
	deadAfter time.Duration

	// tbl guards the nodes map and ring slice (membership), read-mostly.
	tbl    stripedMu
	nodes  map[core.NodeID]*benefactorState
	ring   []core.NodeID // registration order, for round-robin allocation
	cursor atomic.Uint64 // next ring start for stripe allocation

	// per-op counters, exposed as proto.RegistryStats.
	allocs     atomic.Int64
	reserves   atomic.Int64
	releases   atomic.Int64
	heartbeats atomic.Int64
}

type benefactorState struct {
	mu       sync.Mutex // leaf lock: guards info and reserved
	info     core.BenefactorInfo
	reserved int64 // bytes promised to open write sessions
}

func newRegistry(ttl, deadAfter time.Duration) *registry {
	return &registry{
		ttl:       ttl,
		deadAfter: deadAfter,
		nodes:     make(map[core.NodeID]*benefactorState),
	}
}

// register adds or refreshes a node and returns the node's previous
// lifecycle state ("" for a first registration). Re-registration (a
// restarted or flapped benefactor) keeps its identity; its reservation
// counter is set to `reserved`, the caller's sum over the live write
// sessions still striped onto the node — NOT cleared to zero, which would
// let the manager over-promise space those sessions were already granted.
// This is the only path that takes the table lock in write mode. A new
// node's state is fully populated before it is published into the table,
// so a concurrent reader can never observe a zero-valued registration.
func (r *registry) register(req proto.RegisterReq, reserved int64) core.NodeState {
	info := core.BenefactorInfo{
		ID:       req.ID,
		Addr:     req.Addr,
		Capacity: req.Capacity,
		Free:     req.Free,
		Online:   true,
		State:    core.NodeOnline,
		LastSeen: time.Now(),
	}
	r.tbl.lock()
	st, ok := r.nodes[req.ID]
	if !ok {
		r.nodes[req.ID] = &benefactorState{info: info, reserved: reserved}
		r.ring = append(r.ring, req.ID)
		r.tbl.unlock()
		return ""
	}
	r.tbl.unlock()
	st.mu.Lock()
	prev := st.info.State
	st.info = info
	st.reserved = reserved
	st.mu.Unlock()
	return prev
}

// lookup finds a node under the table read lock.
func (r *registry) lookup(id core.NodeID) (*benefactorState, bool) {
	r.tbl.rlock()
	st, ok := r.nodes[id]
	r.tbl.runlock()
	return st, ok
}

// heartbeat refreshes a node's soft state. Unknown nodes are rejected so a
// restarted manager forces re-registration (and with it, recovery). Dead
// nodes are rejected the same way: their chunk locations were dropped at
// decommission, so they must rejoin through register, whose inventory
// reconciliation re-adopts whatever they still hold. A suspect node's
// heartbeat restores it to online.
func (r *registry) heartbeat(req proto.HeartbeatReq) error {
	r.heartbeats.Add(1)
	st, ok := r.lookup(req.ID)
	if !ok {
		return fmt.Errorf("heartbeat from unregistered node %s: %w", req.ID, core.ErrNotFound)
	}
	st.mu.Lock()
	if st.info.State == core.NodeDead {
		st.mu.Unlock()
		return fmt.Errorf("heartbeat from decommissioned node %s: %w", req.ID, core.ErrNotFound)
	}
	st.info.Free = req.Free
	st.info.ChunkHeld = req.Chunks
	st.info.Online = true
	st.info.State = core.NodeOnline
	st.info.LastSeen = time.Now()
	st.mu.Unlock()
	return nil
}

// sweep walks silent nodes down the lifecycle: online nodes past the ttl
// become suspect, suspect nodes past deadAfter become dead. It returns
// the IDs that transitioned during this sweep; the caller decommissions
// the dead ones. A node declared dead has its reservation counter zeroed
// here — the decommission releases the node's promises — under the same
// leaf lock that flips the state, so the pair is atomic.
func (r *registry) sweep(now time.Time) (suspect, dead []core.NodeID) {
	r.tbl.rlock()
	defer r.tbl.runlock()
	for id, st := range r.nodes {
		st.mu.Lock()
		silent := now.Sub(st.info.LastSeen)
		switch st.info.State {
		case core.NodeOnline:
			if silent > r.ttl {
				st.info.Online = false
				st.info.State = core.NodeSuspect
				suspect = append(suspect, id)
			}
		case core.NodeSuspect:
			if r.deadAfter > 0 && silent > r.deadAfter {
				st.info.State = core.NodeDead
				st.reserved = 0
				dead = append(dead, id)
			}
		}
		st.mu.Unlock()
	}
	return suspect, dead
}

// online reports whether the node is currently considered alive.
func (r *registry) online(id core.NodeID) bool {
	st, ok := r.lookup(id)
	if !ok {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.info.Online
}

// addr returns a node's service address.
func (r *registry) addr(id core.NodeID) (string, bool) {
	st, ok := r.lookup(id)
	if !ok {
		return "", false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.info.Addr, true
}

// list snapshots all registrations.
func (r *registry) list() []core.BenefactorInfo {
	r.tbl.rlock()
	defer r.tbl.runlock()
	out := make([]core.BenefactorInfo, 0, len(r.nodes))
	for _, id := range r.ring {
		st := r.nodes[id]
		st.mu.Lock()
		info := st.info
		info.Reserved = st.reserved
		st.mu.Unlock()
		out = append(out, info)
	}
	return out
}

// counts returns node counts by lifecycle state.
func (r *registry) counts() (total, online, suspect, dead int) {
	r.tbl.rlock()
	defer r.tbl.runlock()
	for _, st := range r.nodes {
		st.mu.Lock()
		switch st.info.State {
		case core.NodeSuspect:
			suspect++
		case core.NodeDead:
			dead++
		default:
			if st.info.Online {
				online++
			}
		}
		st.mu.Unlock()
	}
	return len(r.nodes), online, suspect, dead
}

// allocateStripe picks `width` online benefactors in round-robin order
// (paper §IV.A: round-robin striping) that can each accommodate
// perNodeBytes of new reservation, and reserves that space. Fewer than
// `width` nodes may be returned if the pool is small but non-empty; an
// empty pool is an error.
//
// The table is only read-locked: the rotation point comes from one atomic
// cursor increment, and each candidate is admitted (and charged) under
// its own leaf lock, so concurrent allocations on a wide pool proceed in
// parallel instead of queueing on the registry.
func (r *registry) allocateStripe(width int, perNodeBytes int64) ([]proto.Stripe, error) {
	if width <= 0 {
		width = 1
	}
	r.allocs.Add(1)
	r.tbl.rlock()
	defer r.tbl.runlock()
	n := len(r.ring)
	if n == 0 {
		return nil, core.ErrNoBenefactors
	}
	start := int((r.cursor.Add(1) - 1) % uint64(n))
	var stripe []proto.Stripe
	for probe := 0; probe < n && len(stripe) < width; probe++ {
		id := r.ring[(start+probe)%n]
		st := r.nodes[id]
		st.mu.Lock()
		ok := st.info.Online && st.info.Free-st.reserved >= perNodeBytes
		if ok {
			st.reserved += perNodeBytes
			stripe = append(stripe, proto.Stripe{ID: id, Addr: st.info.Addr})
		}
		st.mu.Unlock()
	}
	if len(stripe) == 0 {
		return nil, fmt.Errorf("allocate stripe width %d: %w", width, core.ErrNoBenefactors)
	}
	return stripe, nil
}

// reserve adds bytes to existing per-node reservations (MExtend).
func (r *registry) reserve(ids []core.NodeID, perNodeBytes int64) {
	r.reserves.Add(1)
	for _, id := range ids {
		if st, ok := r.lookup(id); ok {
			st.mu.Lock()
			st.reserved += perNodeBytes
			st.mu.Unlock()
		}
	}
}

// release returns reserved bytes to the pool (commit, abort, session
// expiry).
func (r *registry) release(ids []core.NodeID, perNodeBytes int64) {
	r.releases.Add(1)
	for _, id := range ids {
		st, ok := r.lookup(id)
		if !ok {
			continue
		}
		st.mu.Lock()
		st.reserved -= perNodeBytes
		if st.reserved < 0 {
			st.reserved = 0
		}
		st.mu.Unlock()
	}
}

// pickTargets selects up to n online nodes, excluding `exclude`, with the
// most available space first (replication destinations), and charges each
// selected node a perBytes transfer reservation so concurrent repair
// rounds cannot collectively overfill a node that admission control
// thinks has free space. The caller MUST release every returned node's
// reservation once its copy lands or fails; the copied bytes then show up
// in the node's next heartbeat Free (one heartbeat of double-count slack
// is accepted over holding reservations hostage to heartbeat timing).
func (r *registry) pickTargets(n int, exclude map[core.NodeID]struct{}, perBytes int64) []proto.Stripe {
	r.tbl.rlock()
	defer r.tbl.runlock()
	type cand struct {
		id    core.NodeID
		st    *benefactorState
		addr  string
		avail int64
	}
	var cands []cand
	for id, st := range r.nodes {
		if _, skip := exclude[id]; skip {
			continue
		}
		st.mu.Lock()
		online := st.info.Online
		addr := st.info.Addr
		avail := st.info.Free - st.reserved
		st.mu.Unlock()
		if !online || avail < perBytes {
			continue
		}
		cands = append(cands, cand{id: id, st: st, addr: addr, avail: avail})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].avail != cands[j].avail {
			return cands[i].avail > cands[j].avail
		}
		return cands[i].id < cands[j].id
	})
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]proto.Stripe, 0, n)
	for _, c := range cands[:n] {
		// Re-admit under the leaf lock: the sort ran on a stale snapshot
		// and a racing allocation may have claimed the space since.
		c.st.mu.Lock()
		if c.st.info.Online && c.st.info.Free-c.st.reserved >= perBytes {
			c.st.reserved += perBytes
			out = append(out, proto.Stripe{ID: c.id, Addr: c.addr})
		}
		c.st.mu.Unlock()
	}
	return out
}

// statsSnapshot copies the registry's lock and per-op counters.
func (r *registry) statsSnapshot() proto.RegistryStats {
	lk := r.tbl.snapshot()
	return proto.RegistryStats{
		Ops:        lk.Ops,
		Contended:  lk.Contended,
		Allocs:     r.allocs.Load(),
		Reserves:   r.reserves.Load(),
		Releases:   r.releases.Load(),
		Heartbeats: r.heartbeats.Load(),
	}
}
