package manager

import (
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/namespace"
	"stdchk/internal/proto"
)

// recoveryState accumulates chunk-map replicas pulled from benefactors
// after a manager restart with lost metadata. The paper's rule (§IV.A):
// once the manager has received concurrence from two-thirds of the stripe
// width of benefactors, it can safely restore the dataset's metadata.
type recoveryState struct {
	mu       sync.Mutex
	reports  map[string]map[string]*mapReport // fileName -> signature -> report
	restored map[string]struct{}              // fileName+signature already applied
}

type mapReport struct {
	m         *core.ChunkMap
	reporters map[string]struct{} // benefactor addresses that returned this map
}

func newRecoveryState() *recoveryState {
	return &recoveryState{
		reports:  make(map[string]map[string]*mapReport),
		restored: make(map[string]struct{}),
	}
}

// mapSignature fingerprints a chunk-map's identity-relevant content
// (version, file size, ordered chunk hashes) so identical replicas from
// different benefactors can be counted as concurring.
func mapSignature(m *core.ChunkMap) string {
	h := sha1.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(m.Version))
	h.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], uint64(m.FileSize))
	h.Write(buf[:])
	for _, c := range m.Chunks {
		h.Write(c.ID[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// stripeWidth is the number of distinct benefactors appearing in the map's
// location lists: the "width" whose two-thirds must concur.
func stripeWidth(m *core.ChunkMap) int {
	nodes := make(map[core.NodeID]struct{})
	for _, locs := range m.Locations {
		for _, n := range locs {
			nodes[n] = struct{}{}
		}
	}
	return len(nodes)
}

// add records one replica and reports whether quorum is now met.
func (r *recoveryState) add(name string, m *core.ChunkMap, reporter string) (quorum bool, rep *mapReport) {
	sig := mapSignature(m)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, done := r.restored[name+"/"+sig]; done {
		return false, nil
	}
	byName, ok := r.reports[name]
	if !ok {
		byName = make(map[string]*mapReport)
		r.reports[name] = byName
	}
	report, ok := byName[sig]
	if !ok {
		report = &mapReport{m: m, reporters: make(map[string]struct{})}
		byName[sig] = report
	}
	report.reporters[reporter] = struct{}{}
	width := stripeWidth(m)
	if width == 0 {
		return false, nil
	}
	if len(report.reporters)*3 >= width*2 {
		r.restored[name+"/"+sig] = struct{}{}
		return true, report
	}
	return false, nil
}

// pullRecoveryMaps asks one benefactor for its chunk-map replicas and
// restores every map that reaches quorum.
func (m *Manager) pullRecoveryMaps(addr string) {
	var resp proto.MapListResp
	if _, err := m.pool.Call(addr, proto.BMapList, nil, nil, &resp); err != nil {
		m.logf("recovery pull from %s: %v", addr, err)
		return
	}
	for _, nm := range resp.Maps {
		if nm.Map == nil || nm.Name == "" {
			continue
		}
		// Benefactors hold map replicas for the whole federation; a
		// recovering member restores only its own partition, so recovery
		// scans stay partition-local and members never resurrect datasets
		// they would refuse to serve.
		if !m.owns(nm.Name) {
			continue
		}
		quorum, report := m.recovery.add(nm.Name, nm.Map, addr)
		if !quorum {
			continue
		}
		if err := m.cat.restore(nm.Name, report.m); err != nil {
			m.logf("recovery restore %s: %v", nm.Name, err)
			continue
		}
		m.logf("recovered %s from benefactor quorum (%d reporters)", nm.Name, len(report.reporters))
	}
}

// FinishRecovery leaves recovery mode (new registrations are no longer
// asked for map replicas).
func (m *Manager) FinishRecovery() {
	m.recovering.Store(false)
}

// Recovering reports whether the manager is still collecting recovery
// state.
func (m *Manager) Recovering() bool { return m.recovering.Load() }

// restore re-inserts a recovered version into the catalog. It is
// idempotent per (file name, version).
//
// Under the striped catalog, the dataset's stripe lock serializes restores
// of the same dataset; the dataset-ID index keeps recovered IDs unique
// across stripes, and ID-allocator floors are raised so later commits
// never collide with recovered identifiers.
func (c *catalog) restore(fileName string, cm *core.ChunkMap) error {
	if err := cm.Validate(); err != nil {
		return fmt.Errorf("restore %s: %w", fileName, err)
	}
	key := namespace.DatasetOf(fileName)
	sh := c.dsShardOf(key)
	sh.lock()
	defer sh.unlock()

	ds, ok := sh.byName[key]
	if !ok {
		ds = &dataset{
			id:          c.claimDatasetID(cm.Dataset),
			name:        key,
			folder:      namespace.FolderOf(fileName),
			replication: cm.MinReplication(),
		}
		sh.byName[key] = ds
	}
	for _, v := range ds.versions {
		if v.id == cm.Version || v.fileName == fileName && v.fileSize == cm.FileSize {
			return nil // already present
		}
	}
	verID := cm.Version
	if verID == 0 || versionIDTaken(ds, verID) {
		verID = core.VersionID(c.nextVersion.Add(1))
	} else {
		raiseFloor(&c.nextVersion, uint64(verID))
	}

	// A recovered map's chunks are stored by definition, so the charges
	// are trusted: first references count as stored bytes even without
	// locations (chargePlan merges locations across occurrences).
	asCommit := make([]proto.CommitChunk, len(cm.Chunks))
	for i, ref := range cm.Chunks {
		asCommit[i] = proto.CommitChunk{ID: ref.ID, Size: ref.Size}
		if i < len(cm.Locations) {
			asCommit[i].Locations = cm.Locations[i]
		}
	}
	charges := chargePlan(asCommit, true)
	newBytes, err := c.chargeChunks(fileName, charges)
	if err != nil {
		return fmt.Errorf("restore %s: %w", fileName, err)
	}

	v := &version{
		id:          verID,
		fileName:    fileName,
		fileSize:    cm.FileSize,
		chunkSize:   cm.ChunkSize,
		variable:    cm.Variable,
		chunks:      append([]core.ChunkRef(nil), cm.Chunks...),
		newBytes:    newBytes,
		committedAt: cm.CreatedAt,
	}
	if v.committedAt.IsZero() {
		v.committedAt = time.Now()
	}
	ds.versions = append(ds.versions, v)
	sort.Slice(ds.versions, func(i, j int) bool { return ds.versions[i].id < ds.versions[j].id })
	c.logicalBytes.Add(cm.FileSize)
	// The restored version may reorder the chain's latest and merges
	// recovered locations; memoized maps for this dataset are stale.
	c.maps.invalidateDataset(key)
	c.confirmChunks(charges)
	return nil
}

func versionIDTaken(ds *dataset, id core.VersionID) bool {
	for _, v := range ds.versions {
		if v.id == id {
			return true
		}
	}
	return false
}
