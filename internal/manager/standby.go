package manager

import (
	"fmt"
	"log"
	"sync"
	"time"

	"stdchk/internal/proto"
	"stdchk/internal/wire"
)

// Standby implements the paper's "hot-standby manager as a failover"
// option (§IV.A): it probes the primary manager and, after a configurable
// number of missed probes, starts a replacement manager in recovery mode
// so benefactor-held chunk-map replicas (or a shared journal) restore the
// metadata.
//
// The standby takes over on ListenAddr, which is where clients and
// benefactors should (re)connect — in a deployment this is a virtual IP or
// DNS name pointing at whichever manager is active.
type Standby struct {
	cfg StandbyConfig

	mu      sync.Mutex
	mgr     *Manager
	stopped bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// StandbyConfig parameterizes a Standby.
type StandbyConfig struct {
	// PrimaryAddr is the manager to watch.
	PrimaryAddr string
	// ListenAddr is where the replacement manager serves after takeover.
	ListenAddr string
	// ProbeInterval is the liveness probe period (default 1s).
	ProbeInterval time.Duration
	// FailAfter is the number of consecutive failed probes that trigger
	// takeover (default 3).
	FailAfter int
	// Manager configures the replacement (Recover is forced on unless a
	// JournalPath is set, in which case the journal restores state and
	// quorum recovery fills gaps).
	Manager Config
	// Logger receives takeover events.
	Logger *log.Logger
}

// NewStandby starts watching the primary.
func NewStandby(cfg StandbyConfig) (*Standby, error) {
	if cfg.PrimaryAddr == "" {
		return nil, fmt.Errorf("standby: PrimaryAddr is required")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	s := &Standby{cfg: cfg, stop: make(chan struct{})}
	s.wg.Add(1)
	go s.watch()
	return s, nil
}

// Manager returns the replacement manager after takeover (nil before).
func (s *Standby) Manager() *Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mgr
}

// TookOver reports whether the standby has activated.
func (s *Standby) TookOver() bool { return s.Manager() != nil }

// Close stops the watcher and any replacement manager it started.
func (s *Standby) Close() error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	s.stopped = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	if m := s.Manager(); m != nil {
		return m.Close()
	}
	return nil
}

func (s *Standby) logf(format string, args ...interface{}) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf("standby: "+format, args...)
	}
}

func (s *Standby) watch() {
	defer s.wg.Done()
	failures := 0
	ticker := time.NewTicker(s.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		if s.probe() {
			failures = 0
			continue
		}
		failures++
		s.logf("probe %d/%d failed", failures, s.cfg.FailAfter)
		if failures < s.cfg.FailAfter {
			continue
		}
		s.takeover()
		return
	}
}

// probe checks primary liveness with a stats request.
func (s *Standby) probe() bool {
	conn, err := wire.Dial(s.cfg.PrimaryAddr, nil)
	if err != nil {
		return false
	}
	defer conn.Close()
	_, err = conn.Call(proto.MStats, nil, nil, nil)
	return err == nil
}

// takeover starts the replacement manager.
func (s *Standby) takeover() {
	cfg := s.cfg.Manager
	cfg.ListenAddr = s.cfg.ListenAddr
	if cfg.JournalPath == "" {
		cfg.Recover = true
	}
	if cfg.Logger == nil {
		cfg.Logger = s.cfg.Logger
	}
	// The primary's address may need releasing (same-host failover);
	// retry briefly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		m, err := New(cfg)
		if err == nil {
			s.logf("took over on %s (recover=%v)", m.Addr(), cfg.Recover)
			s.mu.Lock()
			s.mgr = m
			s.mu.Unlock()
			return
		}
		if time.Now().After(deadline) {
			s.logf("takeover failed: %v", err)
			return
		}
		select {
		case <-s.stop:
			return
		case <-time.After(200 * time.Millisecond):
		}
	}
}
