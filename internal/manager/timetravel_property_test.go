package manager

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/proto"
)

// synthChunk builds a commit chunk whose ID really is the SHA-1 of the
// given bytes, so the catalog's content-addressed diff can be checked
// against a brute-force byte comparison of the reconstructed images.
func synthChunk(data []byte) proto.CommitChunk {
	return proto.CommitChunk{
		ID:        core.HashChunk(data),
		Size:      int64(len(data)),
		Locations: []core.NodeID{"n1"},
	}
}

// commitSynth commits one version whose chunk contents are exactly parts.
func commitSynth(t *testing.T, c *catalog, name, folder string, chunkSize int64, parts [][]byte) {
	t.Helper()
	chunks := make([]proto.CommitChunk, len(parts))
	var total int64
	for i, p := range parts {
		chunks[i] = synthChunk(p)
		total += int64(len(p))
	}
	if _, _, err := c.commit(name, folder, 1, chunkSize, false, total, chunks, "prop"); err != nil {
		t.Fatalf("commit %s: %v", name, err)
	}
}

func flatten(parts [][]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// TestDiffPropertyMatchesBruteForce pins the diff contract on random
// version chains: for every version pair, the returned ranges must be
// sorted, non-overlapping, coalesced, and in-bounds; every byte OUTSIDE
// the ranges must be identical between the two reconstructed images (the
// safety half — diff is always a superset of the byte diff); and under
// fixed chunking every range must contain at least one byte that actually
// changed or lies beyond the from-version (the exactness half — no chunk
// is reported changed gratuitously).
func TestDiffPropertyMatchesBruteForce(t *testing.T) {
	const chunkSize = int64(64)
	rng := rand.New(rand.NewSource(8))
	freshChunk := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}

	for trial := 0; trial < 25; trial++ {
		c := newCatalog()
		name := fmt.Sprintf("dp.n%d", trial)

		// A chain of 2-4 versions; each next version mutates some chunks in
		// place, sometimes truncates, sometimes appends, and sometimes ends
		// in a short final chunk — every shape fixed chunking allows.
		nVersions := 2 + rng.Intn(3)
		images := make([][][]byte, nVersions)
		for v := 0; v < nVersions; v++ {
			var parts [][]byte
			if v == 0 {
				for i, n := 0, 1+rng.Intn(8); i < n; i++ {
					parts = append(parts, freshChunk(int(chunkSize)))
				}
			} else {
				prev := images[v-1]
				parts = append([][]byte(nil), prev...)
				// The inherited final chunk may be short; a short non-final
				// chunk is illegal under fixed chunking, so pad it whenever
				// anything may follow it.
				if last := len(parts) - 1; int64(len(parts[last])) != chunkSize {
					parts[last] = freshChunk(int(chunkSize))
				}
				for i := range parts {
					if rng.Float64() < 0.4 {
						parts[i] = freshChunk(int(chunkSize))
					}
				}
				switch {
				case rng.Float64() < 0.25 && len(parts) > 1:
					parts = parts[:len(parts)-1] // truncate
				case rng.Float64() < 0.35:
					parts = append(parts, freshChunk(int(chunkSize)))
				}
			}
			// Sometimes shorten the final chunk (legal under fixed chunking).
			if rng.Float64() < 0.3 {
				last := len(parts) - 1
				parts[last] = freshChunk(1 + rng.Intn(int(chunkSize)))
			}
			images[v] = parts
			commitSynth(t, c, fmt.Sprintf("%s.t%d", name, v), "dp", chunkSize, parts)
		}

		hist, err := c.history(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(hist.Versions) != nVersions {
			t.Fatalf("trial %d: history has %d versions, want %d", trial, len(hist.Versions), nVersions)
		}

		for i := 0; i < nVersions; i++ {
			for j := 0; j < nVersions; j++ {
				from, to := hist.Versions[i], hist.Versions[j]
				d, err := c.diff(name, from.Version, to.Version)
				if err != nil {
					t.Fatalf("trial %d diff v%d..v%d: %v", trial, from.Version, to.Version, err)
				}
				imgFrom, imgTo := flatten(images[i]), flatten(images[j])
				if d.FromSize != int64(len(imgFrom)) || d.ToSize != int64(len(imgTo)) {
					t.Fatalf("trial %d: diff sizes %d/%d, want %d/%d",
						trial, d.FromSize, d.ToSize, len(imgFrom), len(imgTo))
				}
				if i == j && (d.DiffBytes != 0 || len(d.Ranges) != 0) {
					t.Fatalf("trial %d: self-diff reports changes: %+v", trial, d)
				}

				// Range well-formedness: sorted, coalesced (a gap between
				// consecutive ranges), in-bounds, DiffBytes consistent.
				covered := make([]bool, len(imgTo))
				var sum, prevEnd int64
				for k, r := range d.Ranges {
					if r.Length <= 0 || r.Offset < 0 || r.Offset+r.Length > int64(len(imgTo)) {
						t.Fatalf("trial %d: range %d out of bounds: %+v (to size %d)", trial, k, r, len(imgTo))
					}
					if k > 0 && r.Offset <= prevEnd {
						t.Fatalf("trial %d: ranges not sorted/coalesced: %+v", trial, d.Ranges)
					}
					prevEnd = r.Offset + r.Length
					sum += r.Length
					for off := r.Offset; off < r.Offset+r.Length; off++ {
						covered[off] = true
					}
				}
				if sum != d.DiffBytes {
					t.Fatalf("trial %d: DiffBytes %d != range sum %d", trial, d.DiffBytes, sum)
				}

				// Safety: every uncovered byte of `to` must exist in `from`
				// at the same offset with the same value.
				for off := range imgTo {
					if covered[off] {
						continue
					}
					if off >= len(imgFrom) || imgFrom[off] != imgTo[off] {
						t.Fatalf("trial %d v%d..v%d: byte %d outside ranges but differs",
							trial, from.Version, to.Version, off)
					}
				}

				// Exactness under fixed chunking: each range justifies
				// itself with at least one genuinely changed or new byte.
				for _, r := range d.Ranges {
					justified := false
					for off := r.Offset; off < r.Offset+r.Length; off++ {
						if off >= int64(len(imgFrom)) || imgFrom[off] != imgTo[off] {
							justified = true
							break
						}
					}
					if !justified {
						t.Fatalf("trial %d v%d..v%d: range %+v covers only identical bytes",
							trial, from.Version, to.Version, r)
					}
				}
			}
		}
	}
}

// TestRetentionPropertyNoLiveChunkOrphaned pins the retention worker's
// core safety property: a retention sweep must never orphan a chunk that
// any surviving version — of any dataset, retained or merely untouched —
// still references. Chunk contents are drawn from a small pool so
// versions share chunks heavily across datasets and versions, the exact
// regime where a naive per-version delete would free shared chunks.
func TestRetentionPropertyNoLiveChunkOrphaned(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pool := make([][]byte, 10)
	for i := range pool {
		pool[i] = []byte(fmt.Sprintf("chunk-pool-%02d-%032d", i, i))
	}
	chunkSize := int64(len(pool[0]))

	for trial := 0; trial < 20; trial++ {
		c := newCatalog()
		base := time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC)
		nDatasets := 2 + rng.Intn(3)
		for d := 0; d < nDatasets; d++ {
			key := fmt.Sprintf("rp.n%d", d)
			nVersions := 1 + rng.Intn(6)
			for v := 0; v < nVersions; v++ {
				var parts [][]byte
				for i, n := 0, 1+rng.Intn(4); i < n; i++ {
					parts = append(parts, pool[rng.Intn(len(pool))])
				}
				commitSynth(t, c, fmt.Sprintf("%s.t%d", key, v), "rp", chunkSize, parts)
				// Backdate the commit to a controlled instant so keep-hourly
				// schedules see a spread of hour buckets.
				sh := c.dsShardOf(key)
				sh.lock()
				vs := sh.byName[key].versions
				vs[len(vs)-1].committedAt = base.Add(time.Duration(d*nVersions+v) * 23 * time.Minute)
				sh.unlock()
			}
		}

		r := core.Retention{KeepLast: rng.Intn(3), KeepHourly: rng.Intn(3)}
		if !r.Enabled() {
			r.KeepLast = 1
		}
		var cutoff time.Time
		if rng.Float64() < 0.5 {
			cutoff = base.Add(time.Duration(rng.Intn(300)) * time.Minute)
		}
		_, orphans, err := c.applyRetention("rp", r, cutoff)
		if err != nil {
			t.Fatal(err)
		}

		// Recompute, from scratch, every chunk any surviving version still
		// references — independent of the catalog's refcount bookkeeping.
		live := make(map[core.ChunkID]struct{})
		for d := 0; d < nDatasets; d++ {
			key := fmt.Sprintf("rp.n%d", d)
			sh := c.dsShardOf(key)
			sh.rlock()
			if ds, ok := sh.byName[key]; ok {
				for _, v := range ds.versions {
					for _, ref := range v.chunks {
						live[ref.ID] = struct{}{}
					}
				}
			}
			sh.runlock()
		}
		for _, id := range orphans {
			if _, still := live[id]; still {
				t.Fatalf("trial %d (%+v, cutoff %v): orphaned chunk %s is still referenced by a surviving version",
					trial, r, cutoff, id)
			}
			if c.referenced(id) {
				t.Fatalf("trial %d: orphan %s still has catalog references", trial, id)
			}
		}

		// Every surviving version must still resolve to a valid map — the
		// sweep may not have half-removed anything.
		for d := 0; d < nDatasets; d++ {
			key := fmt.Sprintf("rp.n%d", d)
			sh := c.dsShardOf(key)
			sh.rlock()
			ds, ok := sh.byName[key]
			var vers []core.VersionID
			if ok {
				for _, v := range ds.versions {
					vers = append(vers, v.id)
				}
			}
			sh.runlock()
			for _, ver := range vers {
				_, cm, err := c.getMap(key, ver)
				if err != nil {
					t.Fatalf("trial %d: surviving %s@%d no longer resolves: %v", trial, key, ver, err)
				}
				if err := cm.Validate(); err != nil {
					t.Fatalf("trial %d: surviving %s@%d map invalid: %v", trial, key, ver, err)
				}
			}
		}
	}
}

// TestHistoryDiffHandlers drives MHistory and MDiff through the real
// Invoke dispatch: the per-RPC stats counters must tick, and both
// handlers must honor the partition filter the same way the data plane
// does (a standalone manager refuses a router-stamped epoch).
func TestHistoryDiffHandlers(t *testing.T) {
	m, err := New(Config{HeartbeatInterval: time.Hour, SessionTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Invoke(proto.MRegister, regReq("n1", 1<<30), nil); err != nil {
		t.Fatal(err)
	}
	commitFile(t, m, "hd.n1.t0", 1, 4)
	commitFile(t, m, "hd.n1.t1", 2, 4)

	var hist proto.HistoryResp
	if err := m.Invoke(proto.MHistory, proto.HistoryReq{Name: "hd.n1"}, &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.Versions) != 2 {
		t.Fatalf("history has %d versions, want 2", len(hist.Versions))
	}
	var d proto.DiffResp
	if err := m.Invoke(proto.MDiff, proto.DiffReq{
		Name: "hd.n1", From: hist.Versions[0].Version, To: hist.Versions[1].Version,
	}, &d); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Histories != 1 || st.Diffs != 1 {
		t.Fatalf("stats count %d histories / %d diffs, want 1 / 1", st.Histories, st.Diffs)
	}

	// A router-stamped epoch against a standalone manager is the
	// misconfiguration the epoch check exists for.
	if err := m.Invoke(proto.MHistory, proto.HistoryReq{Name: "hd.n1", PartitionEpoch: 0xbeef}, &hist); err == nil {
		t.Fatal("standalone manager accepted an epoch-stamped history request")
	}
	if err := m.Invoke(proto.MDiff, proto.DiffReq{Name: "hd.n1", PartitionEpoch: 0xbeef}, &d); err == nil {
		t.Fatal("standalone manager accepted an epoch-stamped diff request")
	}
}
