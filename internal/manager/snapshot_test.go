package manager

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/faultpoint"
	"stdchk/internal/proto"
)

// newJournaledManager starts a manager on a fresh journal for snapshot
// tests, with benefactors registered so the real alloc/commit handler path
// works.
func newJournaledManager(t *testing.T, dir string, syncJournal, fsyncJournal bool) (*Manager, string) {
	t.Helper()
	journalPath := filepath.Join(dir, "manager.journal")
	m, err := New(Config{
		JournalPath:       journalPath,
		SyncJournal:       syncJournal,
		FsyncJournal:      fsyncJournal,
		HeartbeatInterval: time.Hour,
		SessionTTL:        time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		req := proto.RegisterReq{
			ID:   core.NodeID(fmt.Sprintf("sn%d:1", i)),
			Addr: fmt.Sprintf("sn%d:1", i), Capacity: 1 << 40, Free: 1 << 40,
		}
		if err := m.Invoke(proto.MRegister, req, nil); err != nil {
			t.Fatal(err)
		}
	}
	return m, journalPath
}

// commitFile pushes one file through the real alloc/commit handler path.
func commitFile(t *testing.T, m *Manager, name string, seed, n int) {
	t.Helper()
	var alloc proto.AllocResp
	if err := m.Invoke(proto.MAlloc, proto.AllocReq{
		Name: name, StripeWidth: 2, ChunkSize: 1 << 10, ReserveBytes: int64(n) << 10, Replication: 1,
	}, &alloc); err != nil {
		t.Fatalf("alloc %s: %v", name, err)
	}
	locs := make([]core.NodeID, 0, len(alloc.Stripe))
	for _, st := range alloc.Stripe {
		locs = append(locs, st.ID)
	}
	chunks, total := commitChunks(int64(seed), n, 1<<10)
	for i := range chunks {
		chunks[i].Locations = locs
	}
	if err := m.Invoke(proto.MCommit, proto.CommitReq{
		WriteID: alloc.WriteID, FileSize: total, Chunks: chunks,
	}, nil); err != nil {
		t.Fatalf("commit %s: %v", name, err)
	}
}

// TestSnapshotRecoveryEquivalentToFullReplay is the replay-equivalence
// property extended to snapshots: a random commit/delete stream with
// snapshots taken at random ticket positions must recover byte-identical
// to a full-journal replay of the same history — in the async journal, the
// async+group-commit-fsync journal, and the historical sync journal.
func TestSnapshotRecoveryEquivalentToFullReplay(t *testing.T) {
	modes := []struct {
		name        string
		sync, fsync bool
	}{
		{"async", false, false},
		{"async+fsync", false, true},
		{"sync", true, false},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			dir := t.TempDir()
			m, journalPath := newJournaledManager(t, dir, mode.sync, mode.fsync)
			if err := m.Invoke(proto.MPolicySet, proto.PolicySetReq{
				Folder: "sw", Policy: core.Policy{Kind: core.PolicyNone},
			}, nil); err != nil {
				t.Fatal(err)
			}
			// Interleave commits, deletes, and snapshots: snapshots land at
			// "random" ticket positions determined by the stream below.
			// snapshotOnce(false) leaves the journal whole, so the exact
			// same history supports both recovery paths.
			seq := 0
			for round := 0; round < 6; round++ {
				for w := 0; w < 4; w++ {
					commitFile(t, m, fmt.Sprintf("sw.n%d.t%d", w, round), 100+10*w+round, 6)
					seq++
				}
				if round%2 == 1 {
					if err := m.Invoke(proto.MDelete, proto.DeleteReq{
						Name: fmt.Sprintf("sw.n%d.t%d", round%4, round-1),
					}, nil); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := m.snapshotOnce(false); err != nil {
					t.Fatal(err)
				}
			}
			live := snapshotCatalog(m.cat, false)
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}

			// Recovery path A: newest snapshot + journal suffix.
			mA, err := New(Config{JournalPath: journalPath, HeartbeatInterval: time.Hour})
			if err != nil {
				t.Fatal(err)
			}
			snapA := snapshotCatalog(mA.cat, false)
			stA := mA.Stats()
			mA.Close()

			// Recovery path B: the same journal with every snapshot file
			// removed — a full replay from entry one.
			entries, err := readJournal(journalPath)
			if err != nil {
				t.Fatal(err)
			}
			snaps, err := listSnapshots(journalPath)
			if err != nil {
				t.Fatal(err)
			}
			if len(snaps) == 0 {
				t.Fatal("no snapshot files written")
			}
			for _, p := range snaps {
				if err := os.Remove(p); err != nil {
					t.Fatal(err)
				}
			}
			mB, err := New(Config{JournalPath: journalPath, HeartbeatInterval: time.Hour})
			if err != nil {
				t.Fatal(err)
			}
			snapB := snapshotCatalog(mB.cat, false)
			stB := mB.Stats()
			mB.Close()

			if !reflect.DeepEqual(snapA, snapB) {
				t.Fatalf("snapshot recovery diverged from full replay:\nsnapshot: %+v\nreplay:   %+v", snapA, snapB)
			}
			if !reflect.DeepEqual(snapA, live) {
				t.Fatalf("recovery diverged from the live pre-shutdown catalog:\nrecovered: %+v\nlive:      %+v", snapA, live)
			}
			if stB.JournalReplayed != int64(len(entries)) {
				t.Fatalf("full replay applied %d of %d entries", stB.JournalReplayed, len(entries))
			}
			if stA.JournalReplayed >= stB.JournalReplayed {
				t.Fatalf("snapshot recovery replayed %d entries, full replay %d — the watermark skipped nothing",
					stA.JournalReplayed, stB.JournalReplayed)
			}
			if stA.SnapshotSeq == 0 {
				t.Fatal("snapshot recovery reported no watermark")
			}
		})
	}
}

// TestSnapshotTruncationBoundsRestart: Snapshot() (the production
// entrypoint) must truncate the journal, and recovery from snapshot +
// truncated suffix must reproduce the live catalog exactly.
func TestSnapshotTruncationBoundsRestart(t *testing.T) {
	dir := t.TempDir()
	// Group-commit fsync mode: commits block until their batch is on disk,
	// so journal file sizes are deterministic at every measurement point.
	m, journalPath := newJournaledManager(t, dir, false, true)
	for i := 0; i < 12; i++ {
		commitFile(t, m, fmt.Sprintf("tb.n%d.t0", i), 200+i, 8)
	}
	preSize := fileSize(t, journalPath)
	w1, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if w1 == 0 {
		t.Fatal("snapshot watermark 0 after 12 commits")
	}
	// Lag-one truncation: the first snapshot has no predecessor, so the
	// journal survives whole; the second truncates to the first's
	// watermark.
	if got := fileSize(t, journalPath); got != preSize {
		t.Fatalf("first snapshot truncated the journal (%d -> %d bytes); truncation must lag one snapshot", preSize, got)
	}
	for i := 0; i < 4; i++ {
		commitFile(t, m, fmt.Sprintf("tb.n%d.t1", i), 300+i, 8)
	}
	if _, err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := fileSize(t, journalPath); got >= preSize {
		t.Fatalf("second snapshot did not truncate the journal (%d bytes, pre-snapshot %d)", got, preSize)
	}
	commitFile(t, m, "tb.n0.t2", 400, 8)
	live := snapshotCatalog(m.cat, false)
	st := m.Stats()
	if st.Snapshots != 2 {
		t.Fatalf("Snapshots stat = %d, want 2", st.Snapshots)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := New(Config{JournalPath: journalPath, HeartbeatInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := snapshotCatalog(m2.cat, false); !reflect.DeepEqual(got, live) {
		t.Fatalf("restart from snapshot + truncated journal diverged:\nrecovered: %+v\nlive:      %+v", got, live)
	}
	// The suffix replayed must be bounded by what happened since the
	// previous snapshot, not the full 17-entry history.
	if st2 := m2.Stats(); st2.JournalReplayed >= 17 || st2.JournalReplayed < 1 {
		t.Fatalf("restart replayed %d entries, want a small suffix", st2.JournalReplayed)
	}
}

// TestSnapshotCorruptionFallsBack: a corrupt newest snapshot must be
// skipped in favour of the previous one, and — because truncation lags one
// snapshot — recovery must still reproduce the full catalog.
func TestSnapshotCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	m, journalPath := newJournaledManager(t, dir, false, false)
	for i := 0; i < 6; i++ {
		commitFile(t, m, fmt.Sprintf("cf.n%d.t0", i), 500+i, 4)
	}
	if _, err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		commitFile(t, m, fmt.Sprintf("cf.n%d.t1", i), 600+i, 4)
	}
	w2, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	commitFile(t, m, "cf.n0.t2", 700, 4)
	live := snapshotCatalog(m.cat, false)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte in the newest snapshot; the checksum must catch
	// it.
	newest := snapshotPath(journalPath, w2)
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0xff
	if err := os.WriteFile(newest, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	m2, err := New(Config{JournalPath: journalPath, HeartbeatInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := snapshotCatalog(m2.cat, false); !reflect.DeepEqual(got, live) {
		t.Fatalf("fallback recovery diverged from live catalog:\nrecovered: %+v\nlive:      %+v", got, live)
	}
	if st := m2.Stats(); st.SnapshotSeq == 0 || st.SnapshotSeq >= int64(w2) {
		t.Fatalf("fallback recovered from watermark %d, want the previous snapshot's (< %d, > 0)", st.SnapshotSeq, w2)
	}
}

// TestSnapshotTornJournalAtTruncationBoundary: a crash can tear the final
// journal record right after a snapshot truncated the file. Recovery must
// truncate the torn tail, replay the intact post-watermark suffix, and
// keep everything the snapshot covers.
func TestSnapshotTornJournalAtTruncationBoundary(t *testing.T) {
	dir := t.TempDir()
	m, journalPath := newJournaledManager(t, dir, false, false)
	for i := 0; i < 5; i++ {
		commitFile(t, m, fmt.Sprintf("tt.n%d.t0", i), 800+i, 4)
	}
	if _, err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		commitFile(t, m, fmt.Sprintf("tt.n%d.t1", i), 900+i, 4)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record mid-byte (crash mid-append after the snapshot's
	// truncation point).
	raw, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journalPath, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	m2, err := New(Config{JournalPath: journalPath, HeartbeatInterval: time.Hour})
	if err != nil {
		t.Fatalf("recovery refused torn journal after snapshot: %v", err)
	}
	defer m2.Close()
	// All 5 snapshot-covered files must be present, plus the intact
	// suffix: t1 commits minus the torn final record.
	for i := 0; i < 5; i++ {
		if _, _, err := m2.cat.getMap(fmt.Sprintf("tt.n%d", i), 0); err != nil {
			t.Fatalf("snapshot-covered dataset tt.n%d lost: %v", i, err)
		}
	}
	_, versions, _, _, _ := m2.cat.counters()
	if versions != 7 { // 5 covered + 3 suffix - 1 torn
		t.Fatalf("recovered %d versions, want 7 (5 snapshot-covered + 2 intact suffix records)", versions)
	}
}

// TestJournalErrorSurfacing: after a journal write failure, commits must
// fail instead of acknowledging unjournaled state, the error count must
// surface in stats, and Close must return the sticky first error.
func TestJournalErrorSurfacing(t *testing.T) {
	for _, mode := range []struct {
		name        string
		sync, fsync bool
	}{
		{"sync", true, false},
		{"async+fsync", false, true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			defer faultpoint.Reset()
			dir := t.TempDir()
			m, _ := newJournaledManager(t, dir, mode.sync, mode.fsync)
			commitFile(t, m, "je.n0.t0", 10, 4)
			before := snapshotCatalog(m.cat, true)

			if err := faultpoint.Enable("manager.journal.append", faultpoint.Config{Mode: faultpoint.ModeError}); err != nil {
				t.Fatal(err)
			}
			var alloc proto.AllocResp
			if err := m.Invoke(proto.MAlloc, proto.AllocReq{
				Name: "je.n1.t0", StripeWidth: 1, ChunkSize: 1 << 10, ReserveBytes: 4 << 10, Replication: 1,
			}, &alloc); err != nil {
				t.Fatal(err)
			}
			chunks, total := commitChunks(11, 4, 1<<10)
			for i := range chunks {
				chunks[i].Locations = []core.NodeID{alloc.Stripe[0].ID}
			}
			if err := m.Invoke(proto.MCommit, proto.CommitReq{
				WriteID: alloc.WriteID, FileSize: total, Chunks: chunks,
			}, nil); err == nil {
				t.Fatal("commit acknowledged though its journal record failed")
			}
			// The failed commit must have rolled back completely.
			if after := snapshotCatalog(m.cat, true); !reflect.DeepEqual(before, after) {
				t.Fatalf("failed-journal commit left catalog residue:\nbefore: %+v\nafter:  %+v", before, after)
			}
			faultpoint.Disable("manager.journal.append")
			// The error is sticky: even with the fault disarmed, further
			// commits fail fast rather than risk a journal with a gap.
			if err := m.cat.journalHook(journalEntry{Op: "delete", Name: "je.n0.t0"}); err == nil {
				t.Fatal("journal accepted records after a write failure")
			}
			if st := m.Stats(); st.JournalErrors == 0 {
				t.Fatal("JournalErrors stat did not count the failure")
			}
			if err := m.Close(); err == nil {
				t.Fatal("Close returned nil despite a journal write failure")
			} else if !strings.Contains(err.Error(), "journal") {
				t.Fatalf("Close error %v does not surface the journal failure", err)
			}
		})
	}
}

// TestSnapshotFaultsAreAtomic: an injected failure during snapshot write
// or rename must leave no snapshot file behind and must not corrupt the
// journal — the next restart simply replays the full journal.
func TestSnapshotFaultsAreAtomic(t *testing.T) {
	for _, point := range []string{"manager.snapshot.write", "manager.snapshot.rename"} {
		t.Run(point, func(t *testing.T) {
			defer faultpoint.Reset()
			dir := t.TempDir()
			m, journalPath := newJournaledManager(t, dir, false, false)
			for i := 0; i < 4; i++ {
				commitFile(t, m, fmt.Sprintf("sf.n%d.t0", i), 20+i, 4)
			}
			live := snapshotCatalog(m.cat, false)
			if err := faultpoint.Enable(point, faultpoint.Config{Mode: faultpoint.ModeError}); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Snapshot(); err == nil {
				t.Fatal("snapshot succeeded despite injected fault")
			}
			faultpoint.Disable(point)
			if snaps, _ := listSnapshots(journalPath); len(snaps) != 0 {
				t.Fatalf("failed snapshot left files behind: %v", snaps)
			}
			if st := m.Stats(); st.Snapshots != 0 {
				t.Fatalf("failed snapshot counted in stats: %d", st.Snapshots)
			}
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			m2, err := New(Config{JournalPath: journalPath, HeartbeatInterval: time.Hour})
			if err != nil {
				t.Fatal(err)
			}
			defer m2.Close()
			if got := snapshotCatalog(m2.cat, false); !reflect.DeepEqual(got, live) {
				t.Fatalf("recovery after failed snapshot diverged:\nrecovered: %+v\nlive:      %+v", got, live)
			}
		})
	}
}

// TestCrashAtFaultpointsRecoversAcknowledgedCommits is the manager-level
// crash sweep: for every registered fault point on the commit durability
// path, a crash at that point (durable files captured at the fault
// instant, kill -9 semantics) followed by a restart must recover every
// commit that was acknowledged before the crash, and the recovered catalog
// must be a crash-free-equivalent prefix plus nothing invented.
func TestCrashAtFaultpointsRecoversAcknowledgedCommits(t *testing.T) {
	points := []string{
		"manager.journal.append",
		"manager.journal.fsync",
		"manager.commit.publish",
		"manager.snapshot.write",
		"manager.snapshot.rename",
	}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			defer faultpoint.Reset()
			dir := t.TempDir()
			crashDir := filepath.Join(dir, "crash-image")
			// FsyncJournal: with group commit, an acknowledged commit is in
			// the journal file before the ack — the invariant this sweep
			// proves at every crash point.
			journalPath := filepath.Join(dir, "manager.journal")
			m, err := New(Config{
				JournalPath:       journalPath,
				FsyncJournal:      true,
				HeartbeatInterval: time.Hour,
				SessionTTL:        time.Hour,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				req := proto.RegisterReq{
					ID:   core.NodeID(fmt.Sprintf("cr%d:1", i)),
					Addr: fmt.Sprintf("cr%d:1", i), Capacity: 1 << 40, Free: 1 << 40,
				}
				if err := m.Invoke(proto.MRegister, req, nil); err != nil {
					t.Fatal(err)
				}
			}
			// The crash handler copies the journal directory at the fault
			// instant — exactly the files a kill -9 would leave.
			faultpoint.SetCrashHandler(func(string) {
				copyDir(t, dir, crashDir)
			})

			var acked []string
			commitOne := func(name string, seed int) error {
				var alloc proto.AllocResp
				if err := m.Invoke(proto.MAlloc, proto.AllocReq{
					Name: name, StripeWidth: 1, ChunkSize: 1 << 10, ReserveBytes: 4 << 10, Replication: 1,
				}, &alloc); err != nil {
					return err
				}
				chunks, total := commitChunks(int64(seed), 4, 1<<10)
				for i := range chunks {
					chunks[i].Locations = []core.NodeID{alloc.Stripe[0].ID}
				}
				if err := m.Invoke(proto.MCommit, proto.CommitReq{
					WriteID: alloc.WriteID, FileSize: total, Chunks: chunks,
				}, nil); err != nil {
					return err
				}
				acked = append(acked, name)
				return nil
			}

			for i := 0; i < 5; i++ {
				if err := commitOne(fmt.Sprintf("cp.n%d.t0", i), 30+i); err != nil {
					t.Fatal(err)
				}
			}
			if strings.HasPrefix(point, "manager.snapshot.") {
				// Crash inside the snapshot path, then keep committing —
				// the manager survives the failed snapshot; the crash
				// image is what the recovery assertion runs against.
				if err := faultpoint.Enable(point, faultpoint.Config{Mode: faultpoint.ModeCrash, Count: 1}); err != nil {
					t.Fatal(err)
				}
				if _, err := m.Snapshot(); err == nil {
					t.Fatal("snapshot survived injected crash point")
				}
			} else {
				if err := faultpoint.Enable(point, faultpoint.Config{Mode: faultpoint.ModeCrash, Count: 1}); err != nil {
					t.Fatal(err)
				}
				// Commit until the crash point fires; commits that error
				// were never acknowledged.
				for i := 0; i < 5; i++ {
					if err := commitOne(fmt.Sprintf("cp.n%d.t1", i), 40+i); err != nil {
						break
					}
				}
			}
			if crashed, _ := os.Stat(crashDir); crashed == nil {
				t.Fatalf("fault point %s never fired", point)
			}
			m.Close() // may return the sticky error; the crash image is already taken

			// Restart from the crash image.
			m2, err := New(Config{
				JournalPath:       filepath.Join(crashDir, "manager.journal"),
				HeartbeatInterval: time.Hour,
			})
			if err != nil {
				t.Fatalf("restart from crash image at %s: %v", point, err)
			}
			defer m2.Close()
			for _, name := range acked {
				if _, _, err := m2.cat.getMap(name, 0); err != nil {
					t.Fatalf("crash at %s lost acknowledged commit %s: %v", point, name, err)
				}
			}
			// Nothing invented: every recovered version must be one the
			// workload committed (acknowledged or in the crash window).
			_, versions, _, _, _ := m2.cat.counters()
			if versions < len(acked) || versions > len(acked)+1 {
				t.Fatalf("crash at %s recovered %d versions; %d acknowledged (+1 allowed for the in-flight record)",
					point, versions, len(acked))
			}
		})
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

// copyDir copies the regular files of src into dst (recreated), capturing
// the durable state a kill -9 would leave.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.RemoveAll(dst); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	des, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, de.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJournalTicketsResumeAfterReopen guards the async writer's starting
// ticket: after recovery the ticket counter resumes above persisted
// entries and the snapshot watermark, and the writer must start there too.
// A writer expecting ticket 1 would strand every new record in its reorder
// buffer forever — with group-commit fsync this surfaces as a committer
// hung on its durability ack.
func TestJournalTicketsResumeAfterReopen(t *testing.T) {
	dir := t.TempDir()
	m, journalPath := newJournaledManager(t, dir, false, true)
	for i := 0; i < 3; i++ {
		commitFile(t, m, fmt.Sprintf("rx.n%d.t0", i), 50+i, 4)
	}
	w1, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart with both persisted entries and a watermark floor; the next
	// commit blocks on its group-commit ack, so a writer stuck waiting for
	// ticket 1 would hang right here.
	m2, err := New(Config{JournalPath: journalPath, FsyncJournal: true, HeartbeatInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	req := proto.RegisterReq{ID: "rx0:1", Addr: "rx0:1", Capacity: 1 << 40, Free: 1 << 40}
	if err := m2.Invoke(proto.MRegister, req, nil); err != nil {
		t.Fatal(err)
	}
	commitFile(t, m2, "rx.n9.t0", 99, 4)
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}

	entries, err := readJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	last := entries[len(entries)-1]
	if last.Name != "rx.n9.t0" {
		t.Fatalf("post-reopen commit never reached the journal (last entry %q)", last.Name)
	}
	if last.Seq <= w1 {
		t.Fatalf("post-reopen ticket %d did not resume past the watermark %d", last.Seq, w1)
	}
}
