package manager

import (
	"bufio"
	"crypto/sha1"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/faultpoint"
	"stdchk/internal/proto"
)

// Fault-injection points on the snapshot durability path.
var (
	fpSnapshotWrite  = faultpoint.Register("manager.snapshot.write")
	fpSnapshotRename = faultpoint.Register("manager.snapshot.rename")
)

// A catalog snapshot bounds restart cost by live state instead of journal
// history: recovery loads the newest valid snapshot and replays only the
// journal entries past its ticket watermark. The file layout is one JSON
// header line (magic, watermark, payload size, SHA-1) followed by the JSON
// payload, written to a temp file, fsynced, and renamed into place — a
// crash at any instant leaves either no snapshot or a whole one, and a
// corrupt payload is detected by checksum and skipped in favour of the
// previous snapshot (the newest two are retained).

const snapshotMagic = "stdchk-snapshot"

type snapshotHeader struct {
	Magic     string `json:"magic"`
	Version   int    `json:"version"`
	Watermark uint64 `json:"watermark"`
	Size      int64  `json:"size"`
	SHA1      string `json:"sha1"`
}

// snapshotState is the serialized catalog image. Allocator counters are
// stored verbatim so IDs handed out after recovery match what a full
// journal replay would have produced.
type snapshotState struct {
	Watermark   uint64                 `json:"watermark"`
	NextDataset uint64                 `json:"nextDataset"`
	NextVersion uint64                 `json:"nextVersion"`
	Policies    map[string]core.Policy `json:"policies,omitempty"`
	Datasets    []snapDataset          `json:"datasets"`
}

type snapDataset struct {
	ID          core.DatasetID `json:"id"`
	Name        string         `json:"name"`
	Folder      string         `json:"folder"`
	Replication int            `json:"replication,omitempty"`
	Versions    []snapVersion  `json:"versions"`
}

type snapVersion struct {
	ID          core.VersionID `json:"id"`
	FileName    string         `json:"fileName"`
	FileSize    int64          `json:"fileSize"`
	ChunkSize   int64          `json:"chunkSize"`
	Variable    bool           `json:"variable,omitempty"`
	NewBytes    int64          `json:"newBytes"`
	CommittedAt time.Time      `json:"committedAt"`
	Writer      string         `json:"writer,omitempty"`
	Chunks      []snapChunk    `json:"chunks"`
}

type snapChunk struct {
	ID        core.ChunkID  `json:"id"`
	Size      int64         `json:"size"`
	Locations []core.NodeID `json:"locations,omitempty"`
}

// snapshotPath names the snapshot file for a watermark. The watermark is
// zero-padded so lexical order equals numeric order and listSnapshots can
// sort paths directly.
func snapshotPath(journalPath string, watermark uint64) string {
	return fmt.Sprintf("%s.snapshot.%020d", journalPath, watermark)
}

// listSnapshots returns the journal's snapshot files, newest watermark
// first.
func listSnapshots(journalPath string) ([]string, error) {
	matches, err := filepath.Glob(journalPath + ".snapshot.*")
	if err != nil {
		return nil, err
	}
	out := matches[:0]
	for _, p := range matches {
		if strings.HasSuffix(p, ".tmp") {
			continue
		}
		out = append(out, p)
	}
	sort.Sort(sort.Reverse(sort.StringSlice(out)))
	return out, nil
}

// captureSnapshot walks the live catalog into a serializable image under a
// consistency cut: every dataset stripe's read lock plus the policy-table
// lock, then the journal ticket counter. Tickets are issued inside those
// critical sections (commit/delete under a dataset stripe, policy updates
// under the table lock), so every mutation with ticket <= the watermark
// read here is fully applied and visible to this walk, and every mutation
// the walk cannot see will ticket past it. Chunk locations are read from
// the chunk stripes under their read locks — legal ordering, a dataset
// stripe may hold chunk stripes — and concurrent in-flight charges only
// merge location hints, never publish versions, so the image stays
// consistent.
func (m *Manager) captureSnapshot() *snapshotState {
	c := m.cat
	for _, sh := range c.ds {
		sh.mu.RLock() // uninstrumented: background maintenance, not client load
	}
	m.policies.mu.RLock()
	st := &snapshotState{
		Watermark:   m.journal.seq.Load(),
		NextDataset: c.nextDataset.Load(),
		NextVersion: c.nextVersion.Load(),
		Policies:    make(map[string]core.Policy, len(m.policies.m)),
	}
	for folder, p := range m.policies.m {
		st.Policies[folder] = p
	}
	for _, sh := range c.ds {
		for _, ds := range sh.byName {
			sd := snapDataset{
				ID:          ds.id,
				Name:        ds.name,
				Folder:      ds.folder,
				Replication: ds.replication,
				Versions:    make([]snapVersion, 0, len(ds.versions)),
			}
			for _, v := range ds.versions {
				sv := snapVersion{
					ID:          v.id,
					FileName:    v.fileName,
					FileSize:    v.fileSize,
					ChunkSize:   v.chunkSize,
					Variable:    v.variable,
					NewBytes:    v.newBytes,
					CommittedAt: v.committedAt,
					Writer:      v.writer,
					Chunks:      make([]snapChunk, len(v.chunks)),
				}
				for i, ref := range v.chunks {
					sv.Chunks[i] = snapChunk{ID: ref.ID, Size: ref.Size}
				}
				c.forEachRefShard(v.chunks, false, func(csh *chunkShard, idx []int) {
					for _, i := range idx {
						e, ok := csh.chunks[v.chunks[i].ID]
						if !ok {
							continue
						}
						locs := make([]core.NodeID, 0, len(e.locations))
						for id := range e.locations {
							locs = append(locs, id)
						}
						sort.Slice(locs, func(a, b int) bool { return locs[a] < locs[b] })
						sv.Chunks[i].Locations = locs
					}
				})
				sd.Versions = append(sd.Versions, sv)
			}
			st.Datasets = append(st.Datasets, sd)
		}
	}
	sort.Slice(st.Datasets, func(a, b int) bool { return st.Datasets[a].Name < st.Datasets[b].Name })
	m.policies.mu.RUnlock()
	for _, sh := range c.ds {
		sh.mu.RUnlock()
	}
	return st
}

// writeSnapshotFile durably writes a snapshot: temp file, fsync, rename,
// directory fsync. The directory fsync matters because the journal is
// truncated right after — losing the rename to a crash while the
// truncation survived would lose the covered prefix entirely.
func writeSnapshotFile(path string, st *snapshotState) error {
	payload, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("snapshot: marshal: %w", err)
	}
	sum := sha1.Sum(payload)
	hdr, err := json.Marshal(snapshotHeader{
		Magic:     snapshotMagic,
		Version:   1,
		Watermark: st.Watermark,
		Size:      int64(len(payload)),
		SHA1:      hex.EncodeToString(sum[:]),
	})
	if err != nil {
		return fmt.Errorf("snapshot: marshal header: %w", err)
	}
	if err := fpSnapshotWrite.Hit(); err != nil {
		return fmt.Errorf("snapshot: write: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	w := bufio.NewWriter(f)
	if _, err := w.Write(append(hdr, '\n')); err == nil {
		_, err = w.Write(payload)
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: write %s: %w", tmp, err)
	}
	if err := fpSnapshotRename.Hit(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: rename: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: rename: %w", err)
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// readSnapshotFile loads and checksum-verifies one snapshot file.
func readSnapshotFile(path string) (*snapshotState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("snapshot %s: header: %w", path, err)
	}
	var hdr snapshotHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		return nil, fmt.Errorf("snapshot %s: header: %w", path, err)
	}
	if hdr.Magic != snapshotMagic || hdr.Version != 1 {
		return nil, fmt.Errorf("snapshot %s: bad magic/version %q/%d", path, hdr.Magic, hdr.Version)
	}
	if hdr.Size < 0 || hdr.Size > 1<<40 {
		return nil, fmt.Errorf("snapshot %s: implausible payload size %d", path, hdr.Size)
	}
	payload := make([]byte, hdr.Size)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("snapshot %s: payload: %w", path, err)
	}
	sum := sha1.Sum(payload)
	if hex.EncodeToString(sum[:]) != hdr.SHA1 {
		return nil, fmt.Errorf("snapshot %s: checksum mismatch: %w", path, core.ErrIntegrity)
	}
	var st snapshotState
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, fmt.Errorf("snapshot %s: decode: %w", path, err)
	}
	if st.Watermark != hdr.Watermark {
		return nil, fmt.Errorf("snapshot %s: watermark %d in payload, %d in header", path, st.Watermark, hdr.Watermark)
	}
	return &st, nil
}

// loadSnapshot finds the newest valid snapshot for the configured journal,
// installs it into the (still empty) catalog, and returns its watermark. A
// snapshot that fails to read or verify is skipped with a warning and the
// next-newest is tried — recovery degrades to a longer journal replay, it
// never refuses to start over a bad snapshot file.
func (m *Manager) loadSnapshot() (uint64, error) {
	paths, err := listSnapshots(m.cfg.JournalPath)
	if err != nil {
		return 0, err
	}
	for _, p := range paths {
		st, err := readSnapshotFile(p)
		if err != nil {
			m.logf("snapshot %s unusable (%v); trying previous", p, err)
			continue
		}
		if err := m.installSnapshot(st); err != nil {
			return 0, fmt.Errorf("install %s: %w", p, err)
		}
		m.stats.snapshotSeq.Store(st.Watermark)
		m.logf("loaded snapshot %s: %d datasets at watermark %d", filepath.Base(p), len(st.Datasets), st.Watermark)
		return st.Watermark, nil
	}
	return 0, nil
}

// installSnapshot populates the catalog and policy table from a snapshot
// image. Runs single-threaded at startup before the manager serves.
func (m *Manager) installSnapshot(st *snapshotState) error {
	for folder, p := range st.Policies {
		m.policies.set(folder, p)
	}
	return m.cat.installSnapshot(st)
}

func (c *catalog) installSnapshot(st *snapshotState) error {
	for _, sd := range st.Datasets {
		sh := c.dsShardOf(sd.Name)
		sh.lock()
		if _, dup := sh.byName[sd.Name]; dup {
			sh.unlock()
			return fmt.Errorf("snapshot: duplicate dataset %q", sd.Name)
		}
		ds := &dataset{
			id:          c.claimDatasetID(sd.ID),
			name:        sd.Name,
			folder:      sd.Folder,
			replication: sd.Replication,
		}
		for _, sv := range sd.Versions {
			chunks := make([]proto.CommitChunk, len(sv.Chunks))
			refs := make([]core.ChunkRef, len(sv.Chunks))
			for i, sc := range sv.Chunks {
				chunks[i] = proto.CommitChunk{ID: sc.ID, Size: sc.Size, Locations: sc.Locations}
				refs[i] = core.ChunkRef{Index: i, ID: sc.ID, Size: sc.Size}
			}
			// Trusted charges: the snapshot already validated this state
			// when it was live; location-less chunks are re-created, and
			// first references count toward storedBytes.
			charges := chargePlan(chunks, true)
			if _, err := c.chargeChunks(sv.FileName, charges); err != nil {
				sh.unlock()
				return fmt.Errorf("snapshot: %s: %w", sv.FileName, err)
			}
			raiseFloor(&c.nextVersion, uint64(sv.ID))
			ds.versions = append(ds.versions, &version{
				id:          sv.ID,
				fileName:    sv.FileName,
				fileSize:    sv.FileSize,
				chunkSize:   sv.ChunkSize,
				variable:    sv.Variable,
				chunks:      refs,
				newBytes:    sv.NewBytes,
				committedAt: sv.CommittedAt,
				writer:      sv.Writer,
			})
			c.logicalBytes.Add(sv.FileSize)
			c.confirmChunks(charges)
		}
		sh.byName[sd.Name] = ds
		sh.unlock()
	}
	// Counters stored verbatim so post-recovery allocations match what a
	// full journal replay would have handed out.
	raiseFloor(&c.nextDataset, st.NextDataset)
	raiseFloor(&c.nextVersion, st.NextVersion)
	return nil
}

// Snapshot serializes the live catalog under a consistency cut, durably
// writes it beside the journal, truncates the journal, and prunes all but
// the two newest snapshot files. It returns the snapshot's watermark.
//
// Truncation deliberately lags one snapshot: the journal keeps every entry
// past the PREVIOUS snapshot's watermark, not this one's. Recovery prefers
// the newest snapshot plus the (larger than necessary) journal suffix — the
// watermark skip makes the overlap harmless — and if the newest snapshot
// proves corrupt, the previous snapshot plus the same journal still
// reconstructs everything. Keeping two snapshots without lagging the
// truncation would make the fallback silently lossy.
func (m *Manager) Snapshot() (uint64, error) {
	return m.snapshotOnce(true)
}

// snapshotOnce is Snapshot with the journal truncation separable, so tests
// can compare snapshot+suffix recovery against a full-journal replay of
// the very same history.
func (m *Manager) snapshotOnce(truncate bool) (uint64, error) {
	if m.journal == nil {
		return 0, fmt.Errorf("manager: snapshots require a journal")
	}
	st := m.captureSnapshot()
	if err := writeSnapshotFile(snapshotPath(m.cfg.JournalPath, st.Watermark), st); err != nil {
		return 0, err
	}
	m.stats.snapshots.Add(1)
	m.stats.snapshotSeq.Store(st.Watermark)
	if !truncate {
		return st.Watermark, nil
	}
	cut := m.previousWatermark(st.Watermark)
	kept, dropped, err := m.journal.truncateTo(cut)
	if err != nil {
		return st.Watermark, fmt.Errorf("manager: truncate journal after snapshot: %w", err)
	}
	m.logf("snapshot at watermark %d: %d datasets; journal truncated to watermark %d (%d kept, %d dropped)",
		st.Watermark, len(st.Datasets), cut, kept, dropped)
	m.pruneSnapshots()
	return st.Watermark, nil
}

// previousWatermark returns the newest snapshot watermark strictly below
// latest (0 when none): the lag-one truncation cut.
func (m *Manager) previousWatermark(latest uint64) uint64 {
	paths, err := listSnapshots(m.cfg.JournalPath)
	if err != nil {
		return 0
	}
	for _, p := range paths {
		w, err := snapshotWatermark(p)
		if err != nil {
			continue
		}
		if w < latest {
			return w
		}
	}
	return 0
}

// snapshotWatermark parses the watermark out of a snapshot file name.
func snapshotWatermark(path string) (uint64, error) {
	dot := strings.LastIndexByte(path, '.')
	if dot < 0 {
		return 0, fmt.Errorf("snapshot: unparseable name %q", path)
	}
	return strconv.ParseUint(path[dot+1:], 10, 64)
}

// pruneSnapshots removes all but the two newest snapshot files (the
// newest, plus one fallback should it prove corrupt).
func (m *Manager) pruneSnapshots() {
	paths, err := listSnapshots(m.cfg.JournalPath)
	if err != nil || len(paths) <= 2 {
		return
	}
	for _, p := range paths[2:] {
		if err := os.Remove(p); err != nil {
			m.logf("prune snapshot %s: %v", p, err)
		}
	}
}

// snapshotLoop periodically snapshots and truncates (Config.SnapshotInterval).
func (m *Manager) snapshotLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.SnapshotInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
			if _, err := m.Snapshot(); err != nil {
				m.logf("periodic snapshot failed: %v", err)
			}
		}
	}
}
