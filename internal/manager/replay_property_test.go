package manager

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/proto"
)

// The tests in this file pin the crash-consistency contract of the
// striped catalog: however the metadata plane is striped, (a) replaying
// the same journal must rebuild byte-identical metadata, including after
// a torn final record from a mid-commit crash, and (b) concurrent commits
// on distinct datasets must converge to exactly the state a single-lock
// catalog reaches applying the same commits sequentially.

// catSnap is a canonical, shard-layout-independent image of a catalog.
type catSnap struct {
	Datasets map[string]dsSnap
	Chunks   map[core.ChunkID]ckSnap
	Logical  int64
	Stored   int64
}

type dsSnap struct {
	Folder      string
	Replication int
	Versions    []verSnap
}

type verSnap struct {
	FileName  string
	FileSize  int64
	ChunkSize int64
	Variable  bool
	NewBytes  int64
	Chunks    []core.ChunkRef
}

type ckSnap struct {
	Size    int64
	Refs    int
	Pending int // must be 0 in any quiescent catalog
	Locs    string
}

// snapshotCatalog walks a quiescent catalog into canonical form.
// withNewBytes excludes per-version newBytes accounting when the caller
// compares runs whose interleaving legitimately reorders which version
// first stored a cross-dataset shared chunk.
func snapshotCatalog(c *catalog, withNewBytes bool) catSnap {
	s := catSnap{
		Datasets: make(map[string]dsSnap),
		Chunks:   make(map[core.ChunkID]ckSnap),
		Logical:  c.logicalBytes.Load(),
		Stored:   c.storedBytes.Load(),
	}
	for _, sh := range c.ds {
		for name, ds := range sh.byName {
			d := dsSnap{Folder: ds.folder, Replication: ds.replication}
			versions := append([]*version(nil), ds.versions...)
			sort.Slice(versions, func(i, j int) bool { return versions[i].fileName < versions[j].fileName })
			for _, v := range versions {
				vs := verSnap{
					FileName:  v.fileName,
					FileSize:  v.fileSize,
					ChunkSize: v.chunkSize,
					Variable:  v.variable,
					Chunks:    append([]core.ChunkRef(nil), v.chunks...),
				}
				if withNewBytes {
					vs.NewBytes = v.newBytes
				}
				d.Versions = append(d.Versions, vs)
			}
			s.Datasets[name] = d
		}
	}
	for _, sh := range c.ck {
		for id, e := range sh.chunks {
			locs := make([]string, 0, len(e.locations))
			for n := range e.locations {
				locs = append(locs, string(n))
			}
			sort.Strings(locs)
			s.Chunks[id] = ckSnap{Size: e.size, Refs: e.refs, Pending: e.pending, Locs: strings.Join(locs, ",")}
		}
	}
	return s
}

func propChunkID(writer, t, j int, stable bool) core.ChunkID {
	var b [16]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(writer))
	binary.BigEndian.PutUint32(b[4:8], uint32(j))
	if !stable {
		binary.BigEndian.PutUint64(b[8:16], uint64(t)+1)
	}
	return core.HashChunk(b[:])
}

// driveJournalWorkload runs concurrent writers against a journal-backed
// manager through the real handler path: per writer a chain of versions
// with copy-on-write chunk reuse, plus deletes and a folder policy, all
// journaled — through the ordered async writer by default, or the
// historical synchronous mode with syncJournal. Returns the journal path
// and the live catalog's quiescent snapshot (newBytes excluded: which
// racing commit first stores a shared chunk is interleaving-dependent),
// taken before Close drains the journal.
func driveJournalWorkload(t *testing.T, writers, versions int, syncJournal bool) (string, catSnap) {
	t.Helper()
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "manager.journal")
	m, err := New(Config{
		JournalPath:       journalPath,
		SyncJournal:       syncJournal,
		HeartbeatInterval: time.Hour,
		SessionTTL:        time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 4; i++ {
		req := proto.RegisterReq{
			ID:   core.NodeID(fmt.Sprintf("jn%d:1", i)),
			Addr: fmt.Sprintf("jn%d:1", i), Capacity: 1 << 40, Free: 1 << 40,
		}
		if err := m.Invoke(proto.MRegister, req, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Invoke(proto.MPolicySet, proto.PolicySetReq{
		Folder: "jw", Policy: core.Policy{Kind: core.PolicyReplace, KeepVersions: versions},
	}, nil); err != nil {
		t.Fatal(err)
	}

	const chunksPer = 8
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ti := 0; ti < versions; ti++ {
				name := fmt.Sprintf("jw.n%d.t%d", w, ti)
				var alloc proto.AllocResp
				if err := m.Invoke(proto.MAlloc, proto.AllocReq{
					Name: name, StripeWidth: 2, ChunkSize: 1 << 10,
					Variable: w%2 == 1, ReserveBytes: chunksPer << 10, Replication: 1,
				}, &alloc); err != nil {
					errCh <- err
					return
				}
				locs := make([]core.NodeID, 0, len(alloc.Stripe))
				for _, st := range alloc.Stripe {
					locs = append(locs, st.ID)
				}
				chunks := make([]proto.CommitChunk, chunksPer)
				var fileSize int64
				for j := range chunks {
					stable := j < chunksPer/2
					id := propChunkID(w, ti, j, stable)
					if j == chunksPer-1 {
						// One chunk shared across ALL writers: the
						// cross-shard COW stress case.
						id = propChunkID(-1, 0, 0, true)
					}
					chunks[j] = proto.CommitChunk{ID: id, Size: 1 << 10}
					if !stable || ti == 0 || j == chunksPer-1 {
						chunks[j].Locations = locs
					}
					fileSize += 1 << 10
				}
				if err := m.Invoke(proto.MCommit, proto.CommitReq{
					WriteID: alloc.WriteID, FileSize: fileSize, Chunks: chunks,
				}, nil); err != nil {
					errCh <- fmt.Errorf("commit %s: %w", name, err)
					return
				}
			}
			if w%3 == 0 {
				// Deletes interleave with other writers' commits.
				if err := m.Invoke(proto.MDelete, proto.DeleteReq{
					Name: fmt.Sprintf("jw.n%d.t0", w),
				}, nil); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	return journalPath, snapshotCatalog(m.cat, false)
}

// replayCatalog rebuilds a catalog from a journal file with the given
// stripe count, returning its snapshot.
func replayCatalog(t *testing.T, journalPath string, stripes int) catSnap {
	t.Helper()
	return replayCatalogSnap(t, journalPath, stripes, true)
}

// replayCatalogSnap is replayCatalog with the newBytes comparison made
// optional (live-vs-replay comparisons exclude it; see
// driveJournalWorkload).
func replayCatalogSnap(t *testing.T, journalPath string, stripes int, withNewBytes bool) catSnap {
	t.Helper()
	m, err := New(Config{
		JournalPath:       journalPath,
		MetadataStripes:   stripes,
		HeartbeatInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	return snapshotCatalog(m.cat, withNewBytes)
}

// TestJournalReplayStripeInvariance: replaying one journal into catalogs
// with different stripe counts — including the single-lock reference
// (stripes=1) — must produce identical metadata.
func TestJournalReplayStripeInvariance(t *testing.T) {
	journalPath, _ := driveJournalWorkload(t, 8, 5, false)
	ref := replayCatalog(t, journalPath, 1)
	if len(ref.Datasets) == 0 || len(ref.Chunks) == 0 {
		t.Fatal("reference replay rebuilt an empty catalog")
	}
	for _, stripes := range []int{4, 16, 64} {
		got := replayCatalog(t, journalPath, stripes)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("replay with %d stripes diverged from single-lock reference:\nref: %+v\ngot: %+v",
				stripes, ref, got)
		}
	}
}

// TestJournalReplayTornRecord simulates a manager crash mid-append (the
// kill-mid-commit case): the journal is cut at arbitrary byte offsets,
// leaving a torn final record. Every stripe variant must replay the same
// intact prefix and ignore the torn tail.
func TestJournalReplayTornRecord(t *testing.T) {
	journalPath, _ := driveJournalWorkload(t, 6, 4, false)
	raw, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(raw) - 3, len(raw) / 2, len(raw) / 7} {
		if cut <= 0 {
			continue
		}
		torn := filepath.Join(t.TempDir(), "torn.journal")
		if err := os.WriteFile(torn, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		ref := replayCatalog(t, torn, 1)
		got := replayCatalog(t, torn, 16)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("torn journal (cut %d/%d): striped replay diverged from single-lock reference", cut, len(raw))
		}
		// Exactly the intact prefix must be applied: versions = complete
		// commit records minus complete delete records (each delete in
		// this workload removes one version committed earlier in the same
		// writer's sequence, so journal order guarantees its target is in
		// the prefix too).
		entries, err := readJournal(torn)
		if err != nil {
			t.Fatal(err)
		}
		wantVersions := 0
		for _, e := range entries {
			switch e.Op {
			case "commit":
				wantVersions++
			case "delete":
				wantVersions--
			}
		}
		gotVersions := 0
		for _, d := range got.Datasets {
			gotVersions += len(d.Versions)
		}
		if gotVersions != wantVersions {
			t.Fatalf("torn replay (cut %d/%d) has %d versions, journal prefix implies %d",
				cut, len(raw), gotVersions, wantVersions)
		}
	}
}

// TestConcurrentCommitsMatchSingleLockReference: concurrent commits on
// distinct datasets (with one chunk shared by every writer) applied to a
// striped catalog must converge to the state the single-lock catalog
// reaches applying the same commits sequentially. Per-version newBytes is
// excluded: which version first stores a cross-dataset shared chunk is
// interleaving-dependent by design; the aggregate byte accounting is not.
func TestConcurrentCommitsMatchSingleLockReference(t *testing.T) {
	const writers, versions, chunksPer = 12, 4, 6
	type commitArgs struct {
		name   string
		chunks []proto.CommitChunk
		size   int64
	}
	plan := make([][]commitArgs, writers)
	for w := 0; w < writers; w++ {
		for ti := 0; ti < versions; ti++ {
			chunks := make([]proto.CommitChunk, chunksPer)
			var size int64
			for j := range chunks {
				stable := j < chunksPer/2
				id := propChunkID(w, ti, j, stable)
				if j == chunksPer-1 {
					id = propChunkID(-1, 0, 0, true)
				}
				chunks[j] = proto.CommitChunk{ID: id, Size: 512}
				if !stable || ti == 0 || j == chunksPer-1 {
					chunks[j].Locations = []core.NodeID{core.NodeID(fmt.Sprintf("cn%d:1", w%3))}
				}
				size += 512
			}
			plan[w] = append(plan[w], commitArgs{
				name: fmt.Sprintf("cc.n%d.t%d", w, ti), chunks: chunks, size: size,
			})
		}
	}

	striped := newCatalogStripes(16)
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, ca := range plan[w] {
				if _, _, err := striped.commit(ca.name, "cc", 1, 512, false, ca.size, ca.chunks, ""); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	ref := newCatalogStripes(1)
	for w := 0; w < writers; w++ {
		for _, ca := range plan[w] {
			if _, _, err := ref.commit(ca.name, "cc", 1, 512, false, ca.size, ca.chunks, ""); err != nil {
				t.Fatal(err)
			}
		}
	}

	got := snapshotCatalog(striped, false)
	want := snapshotCatalog(ref, false)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("concurrent striped commits diverged from sequential single-lock reference:\nwant: %+v\ngot:  %+v", want, got)
	}
}

// TestJournalOrderRespectsCOWCausality: writers race to upload-or-reuse
// the same content (probe hasChunks, then commit the chunk either with
// locations or as a copy-on-write reference), the realistic dedup shape.
// Because the catalog journals inside the dataset stripe's critical
// section BEFORE the chunks become probe-visible, a COW commit can never
// precede its chunk's uploading commit in the journal — so replay must
// always succeed. Before the journal hook, handler-level journaling could
// invert that order and brick the manager on restart.
func TestJournalOrderRespectsCOWCausality(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "cow.journal")
	m, err := New(Config{
		JournalPath:       journalPath,
		HeartbeatInterval: time.Hour,
		SessionTTL:        time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		req := proto.RegisterReq{
			ID:   core.NodeID(fmt.Sprintf("cw%d:1", i)),
			Addr: fmt.Sprintf("cw%d:1", i), Capacity: 1 << 40, Free: 1 << 40,
		}
		if err := m.Invoke(proto.MRegister, req, nil); err != nil {
			t.Fatal(err)
		}
	}
	const writers, rounds = 8, 20
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// All writers contend on the same content per round.
				id := propChunkID(-2, r, 0, true)
				name := fmt.Sprintf("cow.n%d.t%d", w, r)
				var alloc proto.AllocResp
				if err := m.Invoke(proto.MAlloc, proto.AllocReq{
					Name: name, StripeWidth: 1, ChunkSize: 256, ReserveBytes: 256, Replication: 1,
				}, &alloc); err != nil {
					errCh <- err
					return
				}
				var has proto.HasResp
				if err := m.Invoke(proto.MHasChunks, proto.HasReq{IDs: []core.ChunkID{id}}, &has); err != nil {
					errCh <- err
					return
				}
				ch := proto.CommitChunk{ID: id, Size: 256}
				if !has.Present[0] {
					ch.Locations = []core.NodeID{core.NodeID(alloc.Stripe[0].ID)}
				}
				err := m.Invoke(proto.MCommit, proto.CommitReq{
					WriteID: alloc.WriteID, FileSize: 256, Chunks: []proto.CommitChunk{ch},
				}, nil)
				if err != nil {
					// A COW commit may race a concurrent DELETE of the
					// chunk's last reference in other tests' workloads —
					// not in this one: no deletes here, so any error is a
					// causality violation.
					errCh <- fmt.Errorf("writer %d round %d: %w", w, r, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// The journal must replay cleanly into any stripe layout.
	for _, stripes := range []int{1, 16} {
		m2, err := New(Config{
			JournalPath:       journalPath,
			MetadataStripes:   stripes,
			HeartbeatInterval: time.Hour,
		})
		if err != nil {
			t.Fatalf("replay with %d stripes: %v", stripes, err)
		}
		m2.Close()
	}
}

// TestJournalReplayToleratesDeleteCommitInversion: live, a copy-on-write
// commit's pending reference can keep a chunk alive across a concurrent
// delete on another stripe, and the delete may reach the journal first.
// The sequential journal cannot express that overlap, so replay must
// re-create the referenced entry instead of refusing to start.
func TestJournalReplayToleratesDeleteCommitInversion(t *testing.T) {
	x := core.HashChunk([]byte("inverted"))
	entries := []journalEntry{
		{Op: "commit", Name: "inv.nA.t0", Replication: 1, ChunkSize: 64, FileSize: 64,
			Chunks: []proto.CommitChunk{{ID: x, Size: 64, Locations: []core.NodeID{"n1"}}}},
		{Op: "delete", Name: "inv.nA.t0"},
		{Op: "commit", Name: "inv.nB.t0", Replication: 1, ChunkSize: 64, FileSize: 64,
			Chunks: []proto.CommitChunk{{ID: x, Size: 64}}}, // COW, journaled after the delete
	}
	journalPath := filepath.Join(t.TempDir(), "inv.journal")
	f, err := os.Create(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, stripes := range []int{1, 16} {
		// Fresh copy per iteration: the live delete below appends to the
		// journal, which must not leak into the next replay.
		iterPath := filepath.Join(t.TempDir(), "inv.journal")
		if err := os.WriteFile(iterPath, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := New(Config{
			JournalPath:       iterPath,
			MetadataStripes:   stripes,
			HeartbeatInterval: time.Hour,
		})
		if err != nil {
			t.Fatalf("replay with %d stripes refused the inverted journal: %v", stripes, err)
		}
		if _, _, err := m.cat.getMap("inv.nB", 0); err != nil {
			t.Fatalf("replay with %d stripes lost B's version: %v", stripes, err)
		}
		if !m.cat.referenced(x) {
			t.Fatalf("replay with %d stripes lost the shared chunk reference", stripes)
		}
		// Byte accounting must balance for the re-created entry: credited
		// at replay, debited when its last reference dies — never negative.
		if _, _, _, _, stored := m.cat.counters(); stored != 64 {
			t.Fatalf("replay with %d stripes: storedBytes %d, want 64", stripes, stored)
		}
		if _, err := m.cat.deleteVersion("inv.nB", 0); err != nil {
			t.Fatal(err)
		}
		if _, _, _, _, stored := m.cat.counters(); stored != 0 {
			t.Fatalf("after deleting the re-created chunk's last reference: storedBytes %d, want 0", stored)
		}
		// Live COW validation must stay strict after replay ends.
		ghost := []proto.CommitChunk{{ID: core.HashChunk([]byte("ghost")), Size: 64}}
		if _, _, err := m.cat.commit("inv.nC.t0", "inv", 1, 64, false, 64, ghost, ""); err == nil {
			t.Fatal("lenient COW validation leaked out of replay mode")
		}
		m.Close()
	}
}

// TestPendingReferencesInvisibleUntilPublished: chunks charged by an
// in-flight commit must not be reported stored by dedup probes, nor
// accepted as copy-on-write references, until the commit publishes and
// confirms them — otherwise a peer could build a version on chunks whose
// commit later rolls back.
func TestPendingReferencesInvisibleUntilPublished(t *testing.T) {
	c := newCatalogStripes(16)
	id := core.HashChunk([]byte("in-flight"))
	charges := []chunkCharge{{
		id: id, size: 64, locs: []core.NodeID{"n1"}, countNew: true,
	}}
	if _, err := c.chargeChunks("pend.n1.t0", charges); err != nil {
		t.Fatal(err)
	}
	if got := c.hasChunks([]core.ChunkID{id}); got[0] {
		t.Fatal("pending (unpublished) chunk visible to dedup probe")
	}
	// A COW commit against the pending chunk must be rejected.
	cow := []proto.CommitChunk{{ID: id, Size: 64}}
	if _, _, err := c.commit("peer.n1.t0", "peer", 1, 64, false, 64, cow, ""); err == nil {
		t.Fatal("copy-on-write reference to an unpublished chunk accepted")
	}
	// GC must still protect the in-flight upload.
	if !c.referenced(id) {
		t.Fatal("pending chunk not protected from GC")
	}
	c.confirmChunks(charges)
	if got := c.hasChunks([]core.ChunkID{id}); !got[0] {
		t.Fatal("confirmed chunk invisible to dedup probe")
	}
	if _, _, err := c.commit("peer.n1.t0", "peer", 1, 64, false, 64, cow, ""); err != nil {
		t.Fatalf("copy-on-write reference to a published chunk rejected: %v", err)
	}
}

// TestCatalogCommitRollbackOnBadSharedChunk: a commit that fails
// validation mid-charge (unknown copy-on-write chunk after valid new
// chunks) must leave no trace — no references, no stored bytes, no
// version.
func TestCatalogCommitRollbackOnBadSharedChunk(t *testing.T) {
	c := newCatalogStripes(16)
	good, total := commitChunks(77, 3, 64)
	if _, _, err := c.commit("rb.n1.t0", "rb", 1, 64, false, total, good, ""); err != nil {
		t.Fatal(err)
	}
	before := snapshotCatalog(c, true)

	bad := []proto.CommitChunk{
		{ID: core.HashChunk([]byte("fresh-a")), Size: 64, Locations: []core.NodeID{"n1"}},
		{ID: good[0].ID, Size: 64},                             // valid COW reference
		{ID: core.HashChunk([]byte("never-stored")), Size: 64}, // unknown COW -> fail
	}
	if _, _, err := c.commit("rb.n1.t1", "rb", 1, 64, false, 3*64, bad, ""); err == nil {
		t.Fatal("commit with unknown shared chunk accepted")
	}
	after := snapshotCatalog(c, true)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("failed commit mutated the catalog:\nbefore: %+v\nafter:  %+v", before, after)
	}
}
