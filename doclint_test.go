package stdchk

import (
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageDocs is the godoc gate: every package in the module must
// open with a package comment — the one-paragraph contract a reader gets
// from `go doc` before any code. CI runs this by name, so a new package
// without its paragraph fails the build rather than rotting silently.
func TestPackageDocs(t *testing.T) {
	for _, dir := range modulePackageDirs(t) {
		pkgs := parseDir(t, dir, parser.PackageClauseOnly|parser.ParseComments)
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") {
				continue
			}
			if pkgDoc(pkg) == "" {
				t.Errorf("package %s (%s) has no package comment", name, dir)
			}
		}
	}
}

// TestExportedDocs holds the load-bearing API packages — the ones
// README/ARCHITECTURE point readers at — to the stricter bar: every
// exported top-level declaration documented.
func TestExportedDocs(t *testing.T) {
	for _, rel := range []string{
		"internal/proto",
		"internal/wire",
		"internal/federation",
		"internal/faultpoint",
		"internal/metrics",
		"internal/workload",
	} {
		dir := filepath.Join(moduleRoot(t), rel)
		for name, pkg := range parseDir(t, dir, parser.ParseComments) {
			if strings.HasSuffix(name, "_test") {
				continue
			}
			d := doc.New(pkg, rel, 0)
			for _, v := range d.Consts {
				checkValueDocured(t, rel, "const "+strings.Join(v.Names, ","), v)
			}
			for _, v := range d.Vars {
				checkValueDocured(t, rel, "var "+strings.Join(v.Names, ","), v)
			}
			for _, typ := range d.Types {
				checkDocured(t, rel, "type "+typ.Name, typ.Doc)
				for _, m := range typ.Methods {
					checkDocured(t, rel, "method "+typ.Name+"."+m.Name, m.Doc)
				}
				for _, f := range typ.Funcs {
					checkDocured(t, rel, "func "+f.Name, f.Doc)
				}
				for _, v := range typ.Consts {
					checkValueDocured(t, rel, "const "+strings.Join(v.Names, ","), v)
				}
				for _, v := range typ.Vars {
					checkValueDocured(t, rel, "var "+strings.Join(v.Names, ","), v)
				}
			}
			for _, f := range d.Funcs {
				checkDocured(t, rel, "func "+f.Name, f.Doc)
			}
		}
	}
}

func checkDocured(t *testing.T, pkg, decl, docText string) {
	t.Helper()
	if strings.TrimSpace(docText) == "" {
		t.Errorf("%s: exported %s has no doc comment", pkg, decl)
	}
}

// checkValueDocured accepts either a group doc on the const/var block or
// a doc (or trailing comment) on every spec inside it — the idiomatic
// style for enums whose members document themselves.
func checkValueDocured(t *testing.T, pkg, decl string, v *doc.Value) {
	t.Helper()
	if strings.TrimSpace(v.Doc) != "" {
		return
	}
	for _, spec := range v.Decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if vs.Doc == nil && vs.Comment == nil {
			t.Errorf("%s: exported %s has no doc comment (neither group nor per-member)", pkg, decl)
			return
		}
	}
}

// pkgDoc returns the package comment of any file in the package.
func pkgDoc(pkg *ast.Package) string {
	for _, f := range pkg.Files {
		if f.Doc != nil {
			return f.Doc.Text()
		}
	}
	return ""
}

func parseDir(t *testing.T, dir string, mode parser.Mode) map[string]*ast.Package {
	t.Helper()
	fset := token.NewFileSet()
	// Test files are exempt: Test/Benchmark funcs are exported by
	// convention, not API surface.
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, mode)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	return pkgs
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

// modulePackageDirs walks the module for directories holding Go files,
// skipping testdata and hidden trees.
func modulePackageDirs(t *testing.T) []string {
	t.Helper()
	var dirs []string
	root := moduleRoot(t)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}
