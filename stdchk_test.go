package stdchk_test

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"

	"stdchk"
)

func startCluster(t *testing.T, n int) *stdchk.Cluster {
	t.Helper()
	c, err := stdchk.StartCluster(stdchk.ClusterOptions{Benefactors: n})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestPublicAPIRoundTrip(t *testing.T) {
	c := startCluster(t, 3)
	cl, err := c.Connect(stdchk.Options{ChunkSize: 64 << 10, StripeWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	data := make([]byte, 1<<20+333)
	rand.New(rand.NewSource(1)).Read(data)

	w, err := cl.Create("demo.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.Bytes != int64(len(data)) || m.OABMBps() <= 0 || m.ASBMBps() <= 0 {
		t.Fatalf("metrics: %+v", m)
	}

	r, err := cl.Open("demo.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}

	info, err := cl.Stat("demo.n1")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Versions) != 1 {
		t.Fatalf("versions: %d", len(info.Versions))
	}
	if err := cl.Delete("demo.n1", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Open("demo.n1"); !errors.Is(err, stdchk.ErrNotFound) {
		t.Fatalf("open after delete: %v", err)
	}
}

func TestPublicAPIFacade(t *testing.T) {
	c := startCluster(t, 2)
	cl, err := c.Connect(stdchk.Options{ChunkSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	fs, err := cl.Mount()
	if err != nil {
		t.Fatal(err)
	}

	f, err := fs.Create("app/app.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("checkpoint"), 10000)
	if _, err := f.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}

	r, err := fs.Open("app/app.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("facade round trip mismatch")
	}

	entries, err := fs.ReadDir("app")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("ReadDir: %d entries", len(entries))
	}
}

func TestPublicAPIPolicies(t *testing.T) {
	c := startCluster(t, 2)
	cl, err := c.Connect(stdchk.Options{ChunkSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.SetPolicy("job", stdchk.Policy{Kind: stdchk.PolicyReplace}); err != nil {
		t.Fatal(err)
	}
	got, err := cl.GetPolicy("job")
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != stdchk.PolicyReplace {
		t.Fatalf("policy = %+v", got)
	}
}

func TestPublicAPIIncrementalMetrics(t *testing.T) {
	c := startCluster(t, 2)
	cl, err := c.Connect(stdchk.Options{ChunkSize: 64 << 10, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	img := make([]byte, 512<<10)
	rand.New(rand.NewSource(2)).Read(img)
	for ts := 0; ts < 2; ts++ {
		w, err := cl.Create("inc.n1.t" + string(rune('0'+ts)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(img); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Wait(); err != nil {
			t.Fatal(err)
		}
		if ts == 1 {
			m := w.Metrics()
			if m.Deduped != int64(len(img)) {
				t.Fatalf("identical rewrite deduped %d of %d", m.Deduped, len(img))
			}
		}
	}
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.StoredBytes >= stats.LogicalBytes {
		t.Fatalf("no dedup: stored %d logical %d", stats.StoredBytes, stats.LogicalBytes)
	}
}

func TestStandaloneManagerAndBenefactor(t *testing.T) {
	mgr, err := stdchk.StartManager(stdchk.ManagerConfig{HeartbeatInterval: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	ben, err := stdchk.StartBenefactor(stdchk.BenefactorConfig{
		ManagerAddr: mgr.Addr(),
		Dir:         t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ben.Close()

	deadline := time.Now().Add(5 * time.Second)
	for mgr.Stats().OnlineBenefactors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("benefactor never registered")
		}
		time.Sleep(20 * time.Millisecond)
	}

	cl, err := stdchk.Connect(stdchk.Options{ManagerAddr: mgr.Addr(), StripeWidth: 1, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	data := bytes.Repeat([]byte("z"), 100<<10)
	w, err := cl.Create("solo.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	w.Write(data)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	r, err := cl.Open("solo.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	r.Close()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("disk-backed round trip failed: %v", err)
	}
}

// TestPublicAPIFederatedCluster checks the facade's federation passthrough:
// a multi-manager cluster behaves like one metadata service — writes and
// reads route transparently, stats merge across members, and the member
// list is visible.
func TestPublicAPIFederatedCluster(t *testing.T) {
	c, err := stdchk.StartCluster(stdchk.ClusterOptions{Managers: 2, Benefactors: 3, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if got := len(c.ManagerAddrs()); got != 2 {
		t.Fatalf("cluster reports %d manager addresses, want 2", got)
	}

	cl, err := c.Connect(stdchk.Options{ChunkSize: 64 << 10, StripeWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	data := make([]byte, 512<<10+99)
	rand.New(rand.NewSource(11)).Read(data)
	for _, name := range []string{"fedapi.n1.t0", "fedapi.n2.t0", "fedapi.n3.t0"} {
		w, err := cl.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	r, err := cl.Open("fedapi.n2.t0")
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	r.Close()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("federated round trip failed: %v", err)
	}
	if st := c.Stats(); st.Datasets != 3 {
		t.Fatalf("merged cluster stats report %d datasets, want 3", st.Datasets)
	}
	list, err := cl.List("fedapi")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("merged list has %d datasets, want 3", len(list))
	}
}
