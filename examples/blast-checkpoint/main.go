// blast-checkpoint: the paper's motivating workload — a long-running
// BLAST-style job checkpointing its process image every interval via the
// BLCR-like library path, with incremental checkpointing (FsCH dedup)
// cutting the stored and transferred bytes (paper §IV.C, Figure 7,
// Table 5).
package main

import (
	"fmt"
	"log"

	"stdchk"
	"stdchk/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := stdchk.StartCluster(stdchk.ClusterOptions{Benefactors: 4})
	if err != nil {
		return err
	}
	defer cluster.Close()

	client, err := cluster.Connect(stdchk.Options{
		StripeWidth: 4,
		Replication: 1,
		Incremental: true, // FsCH: upload only chunks the pool lacks
		ChunkSize:   256 << 10,
	})
	if err != nil {
		return err
	}
	defer client.Close()

	// Ten successive BLCR-style checkpoint images of a 4 MB process:
	// most content survives between checkpoints, some regions shift,
	// some pages are dirtied (see internal/workload).
	trace := workload.BLCRShortInterval(7, 10, 4<<20)

	var logical, uploaded int64
	for ts, img := range trace.Images {
		name := fmt.Sprintf("blast.n1.t%d", ts)
		w, err := client.Create(name)
		if err != nil {
			return err
		}
		if _, err := w.Write(img); err != nil {
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		if err := w.Wait(); err != nil {
			return err
		}
		m := w.Metrics()
		logical += m.Bytes
		uploaded += m.Uploaded
		fmt.Printf("t%-2d wrote %7d bytes, uploaded %7d (deduped %7d)\n",
			ts, m.Bytes, m.Uploaded, m.Deduped)
	}

	fmt.Printf("\ncheckpointed %.1f MB logically, moved %.1f MB over the network (%.0f%% saved)\n",
		float64(logical)/1e6, float64(uploaded)/1e6,
		100*float64(logical-uploaded)/float64(logical))

	stats, err := client.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("pool stores %.1f MB for %.1f MB of checkpoints (copy-on-write chunk sharing)\n",
		float64(stats.StoredBytes)/1e6, float64(stats.LogicalBytes)/1e6)

	// Roll back to an arbitrary earlier timestep, as a restart would.
	r, err := client.Open("blast.n1.t4")
	if err != nil {
		return err
	}
	defer r.Close()
	img, err := r.ReadAll()
	if err != nil {
		return err
	}
	fmt.Printf("restart from t4: restored %d bytes\n", len(img))
	return nil
}
