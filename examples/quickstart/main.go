// Quickstart: bring up an in-process stdchk pool, write a checkpoint
// image, read it back, and inspect the system — the smallest end-to-end
// tour of the public API.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
)

import "stdchk"

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A desktop grid in one process: a metadata manager plus four
	// storage-donor nodes (benefactors).
	cluster, err := stdchk.StartCluster(stdchk.ClusterOptions{Benefactors: 4})
	if err != nil {
		return err
	}
	defer cluster.Close()

	client, err := cluster.Connect(stdchk.Options{
		StripeWidth: 4,                    // stripe writes over all donors
		Replication: 2,                    // keep two replicas of each chunk
		Protocol:    stdchk.SlidingWindow, // fastest write path (paper §IV.B)
	})
	if err != nil {
		return err
	}
	defer client.Close()

	// A fake 8 MB checkpoint image. Names follow the paper's A.Ni.Tj
	// convention: application "sim", node "n1", timestep 0.
	image := make([]byte, 8<<20)
	rand.New(rand.NewSource(42)).Read(image)

	w, err := client.Create("sim.n1.t0")
	if err != nil {
		return err
	}
	if _, err := w.Write(image); err != nil {
		return err
	}
	// Close is the application-visible end of the checkpoint: the app
	// returns to computing while the pipeline drains in the background.
	if err := w.Close(); err != nil {
		return err
	}
	// Wait blocks until the image is safely stored and its chunk-map
	// committed (session semantics).
	if err := w.Wait(); err != nil {
		return err
	}
	m := w.Metrics()
	fmt.Printf("checkpoint stored: %d bytes, OAB %.1f MB/s, ASB %.1f MB/s\n",
		m.Bytes, m.OABMBps(), m.ASBMBps())

	// Restart path: read the checkpoint back.
	r, err := client.Open("sim.n1.t0")
	if err != nil {
		return err
	}
	restored, err := r.ReadAll()
	r.Close()
	if err != nil {
		return err
	}
	if !bytes.Equal(restored, image) {
		return fmt.Errorf("restored image differs from the original")
	}
	fmt.Printf("restored %d bytes, bit-identical\n", len(restored))

	// Inspect the pool.
	donors, err := client.Benefactors()
	if err != nil {
		return err
	}
	fmt.Printf("pool: %d benefactors\n", len(donors))
	stats, err := client.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("catalog: %d dataset(s), %d version(s), %d unique chunk(s)\n",
		stats.Datasets, stats.Versions, stats.UniqueChunks)
	return nil
}
