// lifecycle: automated, time-sensitive checkpoint data management
// (paper §IV.D). Checkpoint images are transient: a "replace" policy makes
// each new image obsolete its predecessors, and a "purge" policy expires
// images by age — the storage system acts as a self-cleaning cache instead
// of filling up with dead snapshots.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"stdchk"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := stdchk.StartCluster(stdchk.ClusterOptions{Benefactors: 3})
	if err != nil {
		return err
	}
	defer cluster.Close()
	client, err := cluster.Connect(stdchk.Options{StripeWidth: 2, Replication: 1})
	if err != nil {
		return err
	}
	defer client.Close()

	writeCkpt := func(name string) error {
		img := make([]byte, 512<<10)
		rand.New(rand.NewSource(int64(len(name)))).Read(img)
		w, err := client.Create(name)
		if err != nil {
			return err
		}
		if _, err := w.Write(img); err != nil {
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		return w.Wait()
	}

	// Normal application scenario: only the newest image matters.
	if err := client.SetPolicy("sim", stdchk.Policy{Kind: stdchk.PolicyReplace}); err != nil {
		return err
	}
	for ts := 0; ts < 5; ts++ {
		if err := writeCkpt(fmt.Sprintf("sim.n1.t%d", ts)); err != nil {
			return err
		}
	}
	info, err := client.Stat("sim.n1")
	if err != nil {
		return err
	}
	fmt.Printf("replace policy: wrote 5 checkpoints, %d version kept (%s)\n",
		len(info.Versions), info.Versions[len(info.Versions)-1].Name)

	// Debugging scenario: keep everything.
	if err := client.SetPolicy("debug", stdchk.Policy{Kind: stdchk.PolicyNone}); err != nil {
		return err
	}
	for ts := 0; ts < 3; ts++ {
		if err := writeCkpt(fmt.Sprintf("debug.n1.t%d", ts)); err != nil {
			return err
		}
	}
	info, err = client.Stat("debug.n1")
	if err != nil {
		return err
	}
	fmt.Printf("no-intervention policy: %d versions retained for debugging\n", len(info.Versions))

	// Scratch scenario: expire by age.
	if err := client.SetPolicy("scratch", stdchk.Policy{
		Kind:       stdchk.PolicyPurge,
		PurgeAfter: 1500 * time.Millisecond,
	}); err != nil {
		return err
	}
	if err := writeCkpt("scratch.n1.t0"); err != nil {
		return err
	}
	fmt.Println("purge policy: wrote a scratch checkpoint, waiting for expiry...")
	deadline := time.Now().Add(15 * time.Second)
	for {
		list, err := client.List("scratch")
		if err != nil {
			return err
		}
		if len(list) == 0 {
			fmt.Println("scratch checkpoint expired and was pruned automatically")
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("purge policy never fired")
		}
		time.Sleep(200 * time.Millisecond)
	}

	stats, err := client.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("versions pruned by policy engine: %d\n", stats.VersionsPruned)
	return nil
}
