// migration: the desktop-grid process-migration story (paper §I). A job
// runs on a donated desktop; the owner reclaims the machine; the job's
// checkpoint — already striped and replicated across other donors — is
// restored on a different node, surviving even the death of benefactors
// that held replicas.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"stdchk"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := stdchk.StartCluster(stdchk.ClusterOptions{
		Benefactors: 5,
		Replication: 2,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// The job on node n7 checkpoints pessimistically before the machine
	// is reclaimed: Close returns only after the image reaches its
	// replication target, so the data survives any single node loss.
	src, err := cluster.Connect(stdchk.Options{
		StripeWidth: 3,
		Replication: 2,
		Semantics:   stdchk.WritePessimistic,
	})
	if err != nil {
		return err
	}
	defer src.Close()

	state := make([]byte, 4<<20)
	rand.New(rand.NewSource(11)).Read(state)
	w, err := src.Create("job42.n7.t9")
	if err != nil {
		return err
	}
	if _, err := w.Write(state); err != nil {
		return err
	}
	start := time.Now()
	if err := w.Close(); err != nil { // blocks until replicated
		return err
	}
	fmt.Printf("pessimistic checkpoint committed and replicated in %v\n",
		time.Since(start).Round(time.Millisecond))

	// The owner returns: the source machine vanishes. Kill a storage
	// donor too — replication must cover for it.
	if err := cluster.StopBenefactor(0); err != nil {
		return err
	}
	fmt.Println("source machine reclaimed; one benefactor died")

	// The scheduler restarts the job on another node: a fresh client
	// fetches the checkpoint; reads fall over to surviving replicas.
	dst, err := cluster.Connect(stdchk.Options{})
	if err != nil {
		return err
	}
	defer dst.Close()
	r, err := dst.Open("job42.n7.t9")
	if err != nil {
		return err
	}
	restored, err := r.ReadAll()
	r.Close()
	if err != nil {
		return err
	}
	if !bytes.Equal(restored, state) {
		return fmt.Errorf("migrated state differs")
	}
	fmt.Printf("job restored on new node from %d bytes of replicated checkpoint\n", len(restored))
	return nil
}
