package stdchk_test

import (
	"io"
	"testing"

	"stdchk/internal/experiments"
)

// The benchmarks below regenerate the paper's tables and figures, one
// bench per artifact, at a reduced scale so `go test -bench=.` finishes in
// minutes. Run `go run ./cmd/stdchk-bench -exp all` for the full formatted
// evaluation with paper-reference values, and see EXPERIMENTS.md for the
// paper-vs-measured record.
//
// benchScale divides the paper's data sizes (the 1 GB test file becomes
// 8 MB); bandwidth calibrations are never scaled, so bottleneck ratios and
// result shapes are preserved.
const benchScale = 128

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	r, ok := experiments.Find(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(experiments.Config{Scale: benchScale, Runs: 1, Out: io.Discard}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1FUSEOverhead regenerates Table 1: local I/O vs the FUSE
// call path vs /stdchk/null.
func BenchmarkTable1FUSEOverhead(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig2OAB regenerates Figure 2: observed application bandwidth
// for CLW/IW/SW across stripe widths, with local/FUSE/NFS baselines.
func BenchmarkFig2OAB(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3ASB regenerates Figure 3: achieved storage bandwidth for
// the same sweep.
func BenchmarkFig3ASB(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4SWBuffers regenerates Figure 4: sliding-window OAB by
// buffer size and stripe width.
func BenchmarkFig4SWBuffers(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5SWBuffersASB regenerates Figure 5: sliding-window ASB by
// buffer size and stripe width.
func BenchmarkFig5SWBuffersASB(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6TenGig regenerates Figure 6: the 10 Gbps client
// aggregating 1 Gbps benefactors.
func BenchmarkFig6TenGig(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkTable2Traces regenerates Table 2: checkpoint trace
// characteristics.
func BenchmarkTable2Traces(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3Heuristics regenerates Table 3: FsCH vs CbCH similarity
// detection and throughput across the four traces.
func BenchmarkTable3Heuristics(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4CbCHSweep regenerates Table 4: the CbCH no-overlap
// (m, k) parameter sweep.
func BenchmarkTable4CbCHSweep(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkFig7IncrementalSW regenerates Figure 7: sliding-window writes
// of successive BLCR images with and without FsCH dedup.
func BenchmarkFig7IncrementalSW(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8Scalability regenerates Figure 8: 7 concurrent clients
// against 20 benefactors, fabric-limited.
func BenchmarkFig8Scalability(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkTable5BlastEndToEnd regenerates Table 5: the end-to-end BLAST
// run on local disk vs stdchk.
func BenchmarkTable5BlastEndToEnd(b *testing.B) { benchExperiment(b, "table5") }
